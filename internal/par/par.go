// Package par is the repository's deterministic parallel-execution engine.
//
// Every headline artifact of the reproduction — the Table 4 model grid, the
// figure sweeps, dataset generation, the robustness severity rows — is
// embarrassingly parallel: independent cells indexed 0..n-1 whose results
// are assembled in index order. par.Map and par.ForEach run those cells on a
// bounded worker pool while preserving the exact observable behaviour of the
// serial loop:
//
//   - Results are returned in task-index order, never completion order.
//   - Tasks must not share mutable state; under that contract the output is
//     byte-identical at any worker count (the determinism contract, see
//     DESIGN.md "Deterministic parallelism").
//   - A panic inside a task is captured and surfaced as a *PanicError
//     rather than crashing sibling workers.
//   - When several tasks fail, the error of the lowest task index wins, so
//     error reporting is deterministic too.
//   - Context cancellation stops dispatching new tasks; tasks already
//     running finish.
//
// workers <= 0 selects runtime.NumCPU(); workers == 1 is the legacy serial
// path (the tasks run inline on the calling goroutine).
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"prism5g/internal/obs"
)

// PanicError wraps a panic recovered from a task.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n%s", e.Task, e.Value, e.Stack)
}

// Workers resolves a worker-count setting: n <= 0 means runtime.NumCPU()
// (the "auto" setting of the CLI -workers flags), any other value is used
// as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// poolTelemetry carries per-pool observability state. A nil pointer (the
// telemetry-disabled path, and the common case) makes every method a
// no-op, so the worker loop stays free of clock reads unless a CLI asked
// for metrics. Metric names: par.tasks / par.panics counters, par.task_s /
// par.task_wait_s duration histograms and par.utilization (busy worker
// time over wall time x workers, one observation per pool).
type poolTelemetry struct {
	r       *obs.Registry
	workers int
	start   time.Time
	busyNS  atomic.Int64
}

func newPoolTelemetry(workers int) *poolTelemetry {
	r := obs.Default()
	if !r.Enabled() {
		return nil
	}
	return &poolTelemetry{r: r, workers: workers, start: time.Now()}
}

// taskStart records queue wait (pool start -> task pickup) and returns the
// task's start time.
func (t *poolTelemetry) taskStart() time.Time {
	if t == nil {
		return time.Time{}
	}
	now := time.Now()
	t.r.Observe("par.task_wait_s", now.Sub(t.start).Seconds())
	return now
}

func (t *poolTelemetry) taskEnd(t0 time.Time) {
	if t == nil {
		return
	}
	d := time.Since(t0)
	t.busyNS.Add(int64(d))
	t.r.Observe("par.task_s", d.Seconds())
	t.r.Add("par.tasks", 1)
}

func (t *poolTelemetry) taskPanicked() {
	if t == nil {
		return
	}
	t.r.Add("par.panics", 1)
}

// finish observes pool-level utilization: the fraction of worker capacity
// that ran tasks. 1.0 means every worker was busy the whole time.
func (t *poolTelemetry) finish(n int) {
	if t == nil {
		return
	}
	elapsed := time.Since(t.start).Seconds()
	if elapsed > 0 && t.workers > 0 {
		util := (time.Duration(t.busyNS.Load()).Seconds()) / (elapsed * float64(t.workers))
		t.r.Observe("par.utilization", util)
		t.r.Emit("par.pool", map[string]any{
			"tasks": n, "workers": t.workers, "wall_s": elapsed, "utilization": util,
		})
	}
	t.r.Add("par.pools", 1)
}

// ForEach runs fn(0..n-1) on at most workers goroutines and waits for all
// of them. It returns the error of the lowest failing task index, or
// ctx.Err() if the context was cancelled before every task was dispatched.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	tele := newPoolTelemetry(w)
	defer tele.finish(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(i, fn, tele); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runTask(i, fn, tele); err != nil {
					errs[i] = err
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runTask invokes fn(i) converting a panic into a *PanicError.
func runTask(i int, fn func(i int) error, tele *poolTelemetry) (err error) {
	t0 := tele.taskStart()
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Task: i, Value: p, Stack: debug.Stack()}
			tele.taskPanicked()
		}
		tele.taskEnd(t0)
	}()
	return fn(i)
}

// Map runs fn(0..n-1) on at most workers goroutines and returns the results
// in task-index order. Error semantics match ForEach; on error the returned
// slice holds the results of the tasks that completed.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// MustMap is Map for task functions that cannot fail; a captured panic is
// re-raised on the calling goroutine, preserving the crash semantics of the
// serial loop it replaces.
func MustMap[T any](ctx context.Context, n, workers int, fn func(i int) T) []T {
	out, err := Map(ctx, n, workers, func(i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		if pe, ok := err.(*PanicError); ok {
			panic(pe.Value)
		}
		panic(err)
	}
	return out
}

// OrderedStream runs produce(0..n-1) on at most workers goroutines and
// feeds each result to consume on the calling goroutine, in strict task
// index order, holding at most 2*workers results in flight. It is the
// streaming counterpart of Map: same pool, same determinism contract
// (consume sees exactly the serial sequence at any worker count), but
// peak memory is bounded by the reorder window instead of n.
//
// Error semantics: consume's first error stops the stream and is
// returned; results already produced for later indices are discarded. A
// produce error (or captured panic, surfaced as *PanicError) is returned
// when the consumer reaches that index — earlier indices are still
// consumed first, so the observed prefix matches the serial run. A
// cancelled context stops the stream with ctx.Err().
func OrderedStream[T any](ctx context.Context, n, workers int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	tele := newPoolTelemetry(w)
	defer tele.finish(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := produceTask(i, produce, tele)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	type slot struct {
		v   T
		err error
	}
	window := 2 * w
	// ready[i%window] carries index i's result. Tickets bound the in-flight
	// indices to the window, so claimed indices always span less than one
	// window and each slot channel (capacity 1) has room for its send.
	ready := make([]chan slot, window)
	for i := range ready {
		ready[i] = make(chan slot, 1)
	}
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-tickets:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Deliver the cancellation so the consumer never
					// blocks on an index that was claimed but not run.
					ready[i%window] <- slot{err: err}
					continue
				}
				v, err := produceTask(i, produce, tele)
				ready[i%window] <- slot{v: v, err: err}
			}
		}()
	}

	var streamErr error
	for i := 0; i < n; i++ {
		var s slot
		select {
		case s = <-ready[i%window]:
		case <-ctx.Done():
			streamErr = ctx.Err()
		}
		if streamErr == nil && s.err != nil {
			streamErr = s.err
		}
		if streamErr == nil {
			streamErr = consume(i, s.v)
		}
		if streamErr != nil {
			break
		}
		tickets <- struct{}{}
	}
	close(done)
	wg.Wait()
	if streamErr != nil {
		return streamErr
	}
	return ctx.Err()
}

// produceTask invokes produce(i) converting a panic into a *PanicError.
func produceTask[T any](i int, produce func(i int) (T, error), tele *poolTelemetry) (v T, err error) {
	t0 := tele.taskStart()
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Task: i, Value: p, Stack: debug.Stack()}
			tele.taskPanicked()
		}
		tele.taskEnd(t0)
	}()
	return produce(i)
}
