package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedAtAnyWorkerCount(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{0, 1, 2, 4, 8, 100} {
		got, err := Map(context.Background(), len(want), w, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", Workers(0), runtime.NumCPU())
	}
	if Workers(-3) != runtime.NumCPU() {
		t.Fatal("negative should resolve to NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit count not honoured")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(context.Background(), 64, workers, func(i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, cap is %d", p, workers)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	for _, w := range []int{1, 4} {
		_, err := Map(context.Background(), 8, w, func(i int) (int, error) {
			if i == 5 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", w, err)
		}
		if pe.Task != 5 || fmt.Sprint(pe.Value) != "boom" {
			t.Fatalf("workers=%d: wrong panic payload: %+v", w, pe)
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	sentinel3 := errors.New("task 3")
	sentinel7 := errors.New("task 7")
	// Task 7 fails instantly; task 3 fails after a delay. The reported
	// error must still be task 3's (the lowest failing index among tasks
	// that ran).
	err := ForEach(context.Background(), 8, 8, func(i int) error {
		switch i {
		case 3:
			time.Sleep(20 * time.Millisecond)
			return sentinel3
		case 7:
			return sentinel7
		}
		return nil
	})
	if !errors.Is(err, sentinel3) {
		t.Fatalf("want task 3's error, got %v", err)
	}
}

func TestContextCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestMustMapRepanics(t *testing.T) {
	defer func() {
		if p := recover(); fmt.Sprint(p) != "kaput" {
			t.Fatalf("want original panic value, got %v", p)
		}
	}()
	MustMap(context.Background(), 4, 4, func(i int) int {
		if i == 2 {
			panic("kaput")
		}
		return i
	})
}

func TestOrderedStreamConsumesInOrder(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		var got []int
		err := OrderedStream(context.Background(), 50, w,
			func(i int) (int, error) {
				// Stagger completion so later indices often finish first.
				time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
				return i * 3, nil
			},
			func(i, v int) error {
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: consumed %d of 50", w, len(got))
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: got[%d]=%d, want %d (out of order)", w, i, v, i*3)
			}
		}
	}
}

func TestOrderedStreamBoundsInFlight(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := OrderedStream(context.Background(), 64, workers,
		func(i int) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return i, nil
		},
		func(i, v int) error {
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The reorder window is 2*workers: produced-but-unconsumed results
	// never exceed it, which is the constant-memory guarantee.
	if p := peak.Load(); p > 2*workers {
		t.Fatalf("observed %d results in flight, window is %d", p, 2*workers)
	}
}

func TestOrderedStreamConsumeErrorStops(t *testing.T) {
	sentinel := errors.New("stop here")
	for _, w := range []int{1, 4} {
		var produced atomic.Int64
		var consumed int
		err := OrderedStream(context.Background(), 1000, w,
			func(i int) (int, error) {
				produced.Add(1)
				return i, nil
			},
			func(i, v int) error {
				consumed++
				if i == 5 {
					return sentinel
				}
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: want sentinel, got %v", w, err)
		}
		if consumed != 6 {
			t.Fatalf("workers=%d: consumed %d, want exactly 6", w, consumed)
		}
		if n := produced.Load(); n >= 1000 {
			t.Fatalf("workers=%d: consume error did not stop production", w)
		}
	}
}

func TestOrderedStreamProduceErrorPreservesPrefix(t *testing.T) {
	sentinel := errors.New("bad task")
	for _, w := range []int{1, 4} {
		var got []int
		err := OrderedStream(context.Background(), 20, w,
			func(i int) (int, error) {
				if i == 7 {
					return 0, sentinel
				}
				return i, nil
			},
			func(i, v int) error {
				got = append(got, v)
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: want sentinel, got %v", w, err)
		}
		// The consumed prefix must be exactly the serial prefix 0..6.
		if len(got) != 7 {
			t.Fatalf("workers=%d: consumed %d, want 7", w, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: prefix[%d]=%d, want %d", w, i, v, i)
			}
		}
	}
}

func TestOrderedStreamPanicSurfaces(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := OrderedStream(context.Background(), 10, w,
			func(i int) (int, error) {
				if i == 4 {
					panic("stream boom")
				}
				return i, nil
			},
			func(i, v int) error { return nil })
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", w, err)
		}
		if pe.Task != 4 || fmt.Sprint(pe.Value) != "stream boom" {
			t.Fatalf("workers=%d: wrong panic payload: %+v", w, pe)
		}
	}
}

func TestOrderedStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var consumed atomic.Int64
	err := OrderedStream(ctx, 1000, 2,
		func(i int) (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		},
		func(i, v int) error {
			if consumed.Add(1) == 4 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := consumed.Load(); n >= 1000 {
		t.Fatal("cancellation did not stop the stream")
	}
}

func TestOrderedStreamEmpty(t *testing.T) {
	err := OrderedStream(context.Background(), 0, 4,
		func(i int) (int, error) { return 0, errors.New("never") },
		func(i, v int) error { return errors.New("never") })
	if err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
}

func TestEmptyAndSerialEdgeCases(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("n=0 must be a no-op")
	}
	// nil context is treated as background.
	out, err := Map(nil, 3, 1, func(i int) (int, error) { return i, nil }) //nolint:staticcheck
	if err != nil || len(out) != 3 {
		t.Fatalf("nil ctx: %v %v", out, err)
	}
}
