#!/bin/sh
# popsmoke.sh
#
# End-to-end smoke of population mode, used by `make pop-smoke` and CI:
#
#   1. prismpop with the jsonl sink must spill a readable one-trace-per-
#      line file with the requested UE count and a telemetry snapshot
#      carrying the population counters.
#   2. The emitted stream must be byte-identical at -workers 1 and 4
#      (the population determinism contract).
#   3. prismeval -population must run the full streaming pipeline
#      (spill -> incremental scaler fit -> streamed windows -> streamed
#      training) to completion.
set -eu

GO=${GO:-go}
POP=${POP:-48}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "pop-smoke: prismpop jsonl spill (pop=$POP)" >&2
$GO run ./cmd/prismpop -pop "$POP" -shardsize 16 -duration 20 -sink jsonl \
    -out "$dir/w1.jsonl" -workers 1 -metrics "$dir/metrics.json" >&2

lines=$(wc -l <"$dir/w1.jsonl")
if [ "$lines" -ne "$POP" ]; then
    echo "pop-smoke: FAIL: spilled $lines traces, want $POP" >&2
    exit 1
fi

python3 - "$dir/metrics.json" "$POP" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snap = json.load(f)
counters = snap.get("counters", {})
want = int(sys.argv[2])
ues = counters.get("pop.ues_built", 0)
spilled = counters.get("sink.spill_traces", 0)
if ues != want or spilled != want:
    sys.exit(f"pop-smoke: counters wrong: pop.ues_built={ues} "
             f"sink.spill_traces={spilled}, want {want}")
print(f"pop-smoke: telemetry ok (ues={ues}, spilled={spilled})")
EOF

echo "pop-smoke: determinism across workers" >&2
$GO run ./cmd/prismpop -pop "$POP" -shardsize 16 -duration 20 -sink jsonl \
    -out "$dir/w4.jsonl" -workers 4 >/dev/null
if ! cmp -s "$dir/w1.jsonl" "$dir/w4.jsonl"; then
    echo "pop-smoke: FAIL: -workers 1 and -workers 4 spills differ" >&2
    exit 1
fi
echo "pop-smoke: spills byte-identical at workers 1 and 4" >&2

echo "pop-smoke: prismeval -population streaming pipeline" >&2
$GO run ./cmd/prismeval -quick -population >&2

echo "pop-smoke: ok" >&2
