#!/bin/sh
# allocgate.sh [baseline.json] [threshold_pct] [pop_baseline.json]
#
# Allocation-regression gate for the hot-path benchmarks the allocation
# diet targets:
#
#   BenchmarkTrainLoop                (internal/predictors)
#   BenchmarkParallelTable4/workers=1 (repo root)
#   BenchmarkPopulationBuild/pop=64   (internal/pop, vs BENCH_pop.json)
#
# Re-runs them with -benchmem and compares allocs_per_op against the
# checked-in baselines (BENCH_obs.json and BENCH_pop.json by default).
# Fails — exit 1 — if any regresses by more than threshold_pct (default
# 20%). Allocation counts are deterministic enough that a single
# -benchtime=1x shot is a stable signal, so the gate stays cheap for CI;
# wall-clock and bytes are reported but never gated (too noisy on shared
# runners).
set -eu

baseline=${1:-BENCH_obs.json}
threshold=${2:-20}
popbaseline=${3:-BENCH_pop.json}
GO=${GO:-go}

if [ ! -f "$baseline" ]; then
    echo "allocgate: baseline $baseline not found" >&2
    exit 1
fi
if [ ! -f "$popbaseline" ]; then
    echo "allocgate: baseline $popbaseline not found" >&2
    exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkParallelTable4/workers=1$' . >"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkTrainLoop$' ./internal/predictors/ >>"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkPopulationBuild/pop=64$' ./internal/pop/ >>"$tmp"

cat "$tmp" >&2

# current <name> -> allocs/op from the fresh run (GOMAXPROCS suffix
# stripped, matching benchjson.sh).
current() {
    awk -v want="$1" '
        $1 ~ /^Benchmark/ && $NF == "allocs/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)
            if (name == want) { print $(NF-1); exit }
        }' "$tmp"
}

# base <name> <file> -> allocs_per_op from a baseline JSON (one object
# per line, as benchjson.sh writes it).
base() {
    awk -v want="$1" '
        index($0, "\"name\": \"" want "\"") {
            if (match($0, /"allocs_per_op": [0-9]+/)) {
                print substr($0, RSTART + 17, RLENGTH - 17)
                exit
            }
        }' "$2"
}

fail=0
for name in "BenchmarkTrainLoop" "BenchmarkParallelTable4/workers=1" "BenchmarkPopulationBuild/pop=64"; do
    cur=$(current "$name")
    case "$name" in
    BenchmarkPopulationBuild*) ref=$(base "$name" "$popbaseline") ;;
    *) ref=$(base "$name" "$baseline") ;;
    esac
    if [ -z "$cur" ]; then
        echo "allocgate: FAIL $name: no result in fresh bench run" >&2
        fail=1
        continue
    fi
    if [ -z "$ref" ]; then
        echo "allocgate: FAIL $name: no allocs_per_op in baseline JSON" >&2
        fail=1
        continue
    fi
    # Integer math: cur*100 > ref*(100+threshold) means >threshold% worse.
    if [ $((cur * 100)) -gt $((ref * (100 + threshold))) ]; then
        echo "allocgate: FAIL $name: $cur allocs/op vs baseline $ref (>${threshold}% regression)" >&2
        fail=1
    else
        echo "allocgate: ok   $name: $cur allocs/op vs baseline $ref" >&2
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "allocgate: allocation regression detected; if intentional, regenerate the baseline (scripts/benchjson.sh, SET=pop for $popbaseline) and justify in the PR" >&2
    exit 1
fi
echo "allocgate: all hot paths within ${threshold}% of baseline" >&2
