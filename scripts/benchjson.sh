#!/bin/sh
# benchjson.sh [output.json]
#
# Runs the repository's headline benchmarks (dataset build, the Table 4
# fan-out, the shared training loop and the ingest repair pass) with
# -benchmem and converts the `go test -bench` text output into a JSON
# array, one object per benchmark:
#
#   {"name": "BenchmarkTrainLoop", "iterations": 1,
#    "ns_per_op": 30454681, "bytes_per_op": 15711640, "allocs_per_op": 177211}
#
# Default output is BENCH_obs.json in the repository root. The raw bench
# text is echoed to stderr so interactive runs stay readable.
set -eu

out=${1:-BENCH_obs.json}
GO=${GO:-go}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkParallelBuild|BenchmarkParallelTable4' . >"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkTrainLoop' ./internal/predictors/ >>"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkRepair' ./internal/trace/ >>"$tmp"

cat "$tmp" >&2

# A -benchmem result line looks like:
#   BenchmarkRepair    1    1165891 ns/op    1312544 B/op    48 allocs/op
# Sub-benchmarks carry a /suffix and a -N CPU suffix; both are kept in the
# name so entries stay unique.
awk '
$1 ~ /^Benchmark/ && $NF == "allocs/op" {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "" || bytes == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, $(NF-1)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp" >"$out"

echo "benchjson: wrote $(grep -c '"name"' "$out") benchmarks to $out" >&2
