#!/bin/sh
# benchjson.sh [output.json]
#
# Runs the repository's headline benchmarks (dataset build, the Table 4
# fan-out, the shared training loop, window extraction and the ingest
# repair pass) with -benchmem and converts the `go test -bench` text
# output into a JSON array, one object per benchmark:
#
#   {"name": "BenchmarkTrainLoop", "iterations": 240, "runs": 3,
#    "ns_per_op": 14318042, "bytes_per_op": 891544, "allocs_per_op": 119,
#    "windows_per_s": 44000}
#
# Every benchmark runs for a real -benchtime (default 1s) and is repeated
# -count times (default 3); per-op numbers in the JSON are the mean across
# the repeats and `iterations` is the total iteration count, so entries no
# longer record single-shot `iterations: 1` noise. Override with the
# BENCHTIME / COUNT environment variables (e.g. BENCHTIME=100ms COUNT=1
# for a quick smoke).
#
# Custom throughput metrics reported via b.ReportMetric — windows/s and
# traces/s, the headline numbers — are carried into the JSON as
# `windows_per_s` / `traces_per_s` when present.
#
# Results are wrapped in an object with a `host` block (GOMAXPROCS, CPU
# count, CPU model, Go version) so numbers are never compared across
# machines by accident:
#
#   {"host": {"go_max_procs": 1, ...}, "benchmarks": [...]}
#
# The SET environment variable selects the benchmark set: "obs" (default)
# runs the headline set above; "pop" runs BenchmarkPopulationBuild
# (internal/pop) and defaults the output to BENCH_pop.json, carrying the
# population metrics (ues/s, allocs/ue) into the JSON.
#
# Default output is BENCH_<set>.json in the repository root. The raw bench
# text is echoed to stderr so interactive runs stay readable.
set -eu

SET=${SET:-obs}
out=${1:-BENCH_${SET}.json}
GO=${GO:-go}
BENCHTIME=${BENCHTIME:-1s}
COUNT=${COUNT:-3}

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
# GOMAXPROCS defaults to the CPU count unless overridden in the environment.
gomaxprocs=${GOMAXPROCS:-$ncpu}
goversion=$($GO version | awk '{print $3}')
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

case "$SET" in
pop)
    $GO test -run '^$' -benchtime="$BENCHTIME" -count="$COUNT" -benchmem \
        -bench 'BenchmarkPopulationBuild' ./internal/pop/ >"$tmp"
    ;;
obs)
    $GO test -run '^$' -benchtime="$BENCHTIME" -count="$COUNT" -benchmem \
        -bench 'BenchmarkParallelBuild|BenchmarkParallelTable4' . >"$tmp"
    $GO test -run '^$' -benchtime="$BENCHTIME" -count="$COUNT" -benchmem \
        -bench 'BenchmarkTrainLoop' ./internal/predictors/ >>"$tmp"
    $GO test -run '^$' -benchtime="$BENCHTIME" -count="$COUNT" -benchmem \
        -bench 'BenchmarkRepair|BenchmarkWindows|BenchmarkMakeWindow' ./internal/trace/ >>"$tmp"
    ;;
*)
    echo "benchjson: unknown SET=$SET (obs, pop)" >&2
    exit 1
    ;;
esac

cat "$tmp" >&2

# A -benchmem result line looks like:
#   BenchmarkRepair    950    1165891 ns/op    1312544 B/op    48 allocs/op
# with any b.ReportMetric values (windows/s, traces/s) interleaved by unit.
# Sub-benchmarks carry a /suffix, kept in the name; the -N GOMAXPROCS
# suffix (absent when GOMAXPROCS=1) is stripped so names stay stable
# across hosts. -count repeats are averaged per name.
awk -v gmp="$gomaxprocs" -v ncpu="$ncpu" -v gover="$goversion" -v cpu="$cpumodel" '
$1 ~ /^Benchmark/ && $NF == "allocs/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in runs)) order[++nnames] = name
    runs[name]++
    iters[name] += $2
    for (i = 3; i < NF; i++) {
        unit = $(i+1)
        if (unit == "ns/op")     ns[name]     += $i
        if (unit == "B/op")      bytes[name]  += $i
        if (unit == "allocs/op") allocs[name] += $i
        if (unit == "windows/s") wps[name]    += $i
        if (unit == "traces/s")  tps[name]    += $i
        if (unit == "ues/s")     ups[name]    += $i
        if (unit == "allocs/ue") apu[name]    += $i
    }
}
BEGIN {
    printf "{\n"
    printf "  \"host\": {\"go_max_procs\": %s, \"num_cpu\": %s, \"go_version\": \"%s\", \"cpu\": \"%s\"},\n", \
        gmp, ncpu, gover, cpu
    printf "  \"benchmarks\": [\n"
}
END {
    for (j = 1; j <= nnames; j++) {
        name = order[j]
        r = runs[name]
        if (j > 1) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %d, \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f", \
            name, iters[name], r, ns[name] / r, bytes[name] / r, allocs[name] / r
        if (name in wps) printf ", \"windows_per_s\": %.0f", wps[name] / r
        if (name in tps) printf ", \"traces_per_s\": %.0f", tps[name] / r
        if (name in ups) printf ", \"ues_per_s\": %.0f", ups[name] / r
        if (name in apu) printf ", \"allocs_per_ue\": %.0f", apu[name] / r
        printf "}"
    }
    printf "\n  ]\n}\n"
}
' "$tmp" >"$out"

echo "benchjson: wrote $(grep -c '"name"' "$out") benchmarks to $out (benchtime=$BENCHTIME count=$COUNT)" >&2
