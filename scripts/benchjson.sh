#!/bin/sh
# benchjson.sh [output.json]
#
# Runs the repository's headline benchmarks (dataset build, the Table 4
# fan-out, the shared training loop and the ingest repair pass) with
# -benchmem and converts the `go test -bench` text output into a JSON
# array, one object per benchmark:
#
#   {"name": "BenchmarkTrainLoop", "iterations": 1,
#    "ns_per_op": 30454681, "bytes_per_op": 15711640, "allocs_per_op": 177211}
#
# Results are wrapped in an object with a `host` block (GOMAXPROCS, CPU
# count, CPU model, Go version) so numbers are never compared across
# machines by accident:
#
#   {"host": {"go_max_procs": 1, ...}, "benchmarks": [...]}
#
# Default output is BENCH_obs.json in the repository root. The raw bench
# text is echoed to stderr so interactive runs stay readable.
set -eu

out=${1:-BENCH_obs.json}
GO=${GO:-go}

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
# GOMAXPROCS defaults to the CPU count unless overridden in the environment.
gomaxprocs=${GOMAXPROCS:-$ncpu}
goversion=$($GO version | awk '{print $3}')
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkParallelBuild|BenchmarkParallelTable4' . >"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkTrainLoop' ./internal/predictors/ >>"$tmp"
$GO test -run '^$' -benchtime=1x -benchmem \
    -bench 'BenchmarkRepair' ./internal/trace/ >>"$tmp"

cat "$tmp" >&2

# A -benchmem result line looks like:
#   BenchmarkRepair    1    1165891 ns/op    1312544 B/op    48 allocs/op
# Sub-benchmarks carry a /suffix and a -N CPU suffix; both are kept in the
# name so entries stay unique.
awk -v gmp="$gomaxprocs" -v ncpu="$ncpu" -v gover="$goversion" -v cpu="$cpumodel" '
$1 ~ /^Benchmark/ && $NF == "allocs/op" {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "" || bytes == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, $(NF-1)
}
BEGIN {
    printf "{\n"
    printf "  \"host\": {\"go_max_procs\": %s, \"num_cpu\": %s, \"go_version\": \"%s\", \"cpu\": \"%s\"},\n", \
        gmp, ncpu, gover, cpu
    printf "  \"benchmarks\": [\n"
}
END   { printf "\n  ]\n}\n" }
' "$tmp" >"$out"

echo "benchjson: wrote $(grep -c '"name"' "$out") benchmarks to $out" >&2
