#!/bin/sh
# covergate.sh <go-test-cover-output-file>
#
# Soft per-package coverage gate over the packages the conformance harness
# leans on. Reads the summary lines `go test -cover ./...` already printed
# (no second test run), so `make cover` stays a single pass:
#
#   ok  	prism5g/internal/nn	0.011s	coverage: 92.9% of statements
#
# Below WARN% prints a warning; below FAIL% (or missing coverage) exits
# nonzero. The gate is deliberately soft at the top: it catches coverage
# collapse, not day-to-day drift.
set -eu

if [ $# -ne 1 ] || [ ! -r "$1" ]; then
    echo "usage: $0 <go-test-cover-output-file>" >&2
    exit 2
fi
out=$1
WARN=75
FAIL=40

status=0
for pkg in prism5g/internal/conform prism5g/internal/grid prism5g/internal/nn prism5g/internal/obs prism5g/internal/qoe; do
    pct=$(awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg {
        for (i = 3; i <= NF; i++) if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $(i+1); exit }
    }' "$out")
    if [ -z "$pct" ]; then
        echo "covergate: FAIL $pkg reported no coverage" >&2
        status=1
        continue
    fi
    int=${pct%.*}
    if [ "$int" -lt "$FAIL" ]; then
        echo "covergate: FAIL $pkg at $pct% (floor $FAIL%)" >&2
        status=1
    elif [ "$int" -lt "$WARN" ]; then
        echo "covergate: warn $pkg at $pct% (target $WARN%)"
    else
        echo "covergate: ok $pkg at $pct%"
    fi
done
exit $status
