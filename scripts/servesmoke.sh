#!/bin/sh
# servesmoke.sh [port]
#
# End-to-end serving smoke: build prismserve and prismload, start the
# server with a deliberately undersized queue, probe health/readiness,
# drive a concurrent burst (which must surface backpressure as 429s, not
# errors), run one seeded chaos pass (slow-loris, malformed payloads,
# mid-request disconnects, bursts), then SIGTERM the server and require a
# clean drain with exit status 0. Any prismload failure (5xx, accepted
# garbage, unexpected transport error, unhealthy server) fails the smoke.
set -eu

port=${1:-18431}
addr=127.0.0.1:$port
GO=${GO:-go}

bindir=$(mktemp -d)
srv_pid=
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$bindir"
}
trap cleanup EXIT

$GO build -o "$bindir/prismserve" ./cmd/prismserve
$GO build -o "$bindir/prismload" ./cmd/prismload

# -slow emulates a heavier model so the undersized queue actually fills;
# 20ms per inference stays well inside the 250ms request deadline.
"$bindir/prismserve" -addr "$addr" -queue 4 -concurrency 2 -slow 20ms &
srv_pid=$!

"$bindir/prismload" -addr "$addr" -probe -probe-wait 30s

# Plain burst against the undersized queue: must answer everything (OK,
# warmup or 429-with-Retry-After), shedding at least once to prove the
# backpressure path actually engaged.
"$bindir/prismload" -addr "$addr" -sessions 30 -requests 20 | tee "$bindir/load.out"
shed=$(sed -n 's/.*"shed":\([0-9]*\).*/\1/p' "$bindir/load.out")
if [ "${shed:-0}" -eq 0 ]; then
    echo "servesmoke: burst produced no sheds; backpressure path untested" >&2
    exit 1
fi

"$bindir/prismload" -addr "$addr" -sessions 12 -requests 12 -chaos

kill -TERM "$srv_pid"
if ! wait "$srv_pid"; then
    echo "servesmoke: server exited nonzero after SIGTERM" >&2
    exit 1
fi
srv_pid=
echo "servesmoke: PASS (sheds=$shed, chaos survived, clean drain)"
