#!/bin/sh
# gridsmoke.sh
#
# End-to-end smoke of the scenario-grid engine, used by `make grid-smoke`
# and CI:
#
#   1. A tiny 2x2 QoE grid runs to completion (the reference).
#   2. The same grid is interrupted with -abort-after 2 (exit code 3),
#      then resumed; the resumed directory must be byte-identical to the
#      uninterrupted reference — the grid resume contract.
#   3. The resumed run must have reused the 2 pre-abort cells from the
#      manifest instead of recomputing them.
#   4. A -workers 4 run must also be byte-identical (the grid determinism
#      contract).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

# go run would swallow the abort exit code (it always exits 1 on a nonzero
# child), so build the real binary once.
$GO build -o "$dir/prismgrid" ./cmd/prismgrid
GRID=$dir/prismgrid

cat >"$dir/grid.json" <<'EOF'
{
  "name": "smoke",
  "seed": 11,
  "ml": {"traces": 2, "samples_per_trace": 40, "stride": 3},
  "axes": {
    "operators": ["OpZ"],
    "mobilities": ["walking"],
    "predictors": ["Ideal", "MovingMean"],
    "apps": ["cloudgaming", "vivo"]
  }
}
EOF

echo "grid-smoke: reference run" >&2
"$GRID" -config "$dir/grid.json" -out "$dir/ref" >&2

echo "grid-smoke: interrupted run (-abort-after 2)" >&2
status=0
"$GRID" -config "$dir/grid.json" -out "$dir/resume" \
    -abort-after 2 >&2 || status=$?
if [ "$status" -ne 3 ]; then
    echo "grid-smoke: FAIL: aborted run exited $status, want 3" >&2
    exit 1
fi
if [ -e "$dir/resume/summary.json" ]; then
    echo "grid-smoke: FAIL: aborted run wrote a summary" >&2
    exit 1
fi

echo "grid-smoke: resume" >&2
out=$("$GRID" -config "$dir/grid.json" -out "$dir/resume")
echo "$out" >&2
case $out in
*"2 cached"*) ;;
*)
    echo "grid-smoke: FAIL: resume did not reuse the 2 pre-abort cells" >&2
    exit 1
    ;;
esac

if ! diff -r "$dir/ref" "$dir/resume" >&2; then
    echo "grid-smoke: FAIL: resumed run differs from uninterrupted reference" >&2
    exit 1
fi
echo "grid-smoke: resumed run byte-identical to reference" >&2

echo "grid-smoke: determinism at -workers 4" >&2
"$GRID" -config "$dir/grid.json" -out "$dir/w4" -workers 4 >/dev/null
if ! diff -r "$dir/ref" "$dir/w4" >&2; then
    echo "grid-smoke: FAIL: -workers 4 run differs from reference" >&2
    exit 1
fi
echo "grid-smoke: ok" >&2
