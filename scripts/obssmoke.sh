#!/bin/sh
# obssmoke.sh <metrics-snapshot.json> [port]
#
# Two-part telemetry smoke, used by `make obs-smoke` and the CI telemetry
# step:
#
#  1. Snapshot check: an instrumented pipeline run must have produced a
#     parseable metrics snapshot with nonzero counters from every stage —
#     sim (trace generation), par (worker pool), trace (windowing) and
#     train (epoch loop).
#
#  2. Live serving check: start prismserve with a journal, drive prismload
#     (with its own client-side journal), scrape the live
#     /metrics?format=openmetrics exposition and validate it structurally
#     (legal names, cumulative buckets, exemplars on the latency
#     histogram, trailing # EOF), then run `prismobs blame` and
#     `prismobs slo` over both journals. Every answered load request must
#     have carried an X-Prism-Trace header.
set -eu

if [ $# -lt 1 ] || [ ! -r "$1" ]; then
    echo "usage: $0 <metrics-snapshot.json> [port]" >&2
    exit 2
fi
snap=$1
port=${2:-18437}
addr=127.0.0.1:$port
GO=${GO:-go}

# ---- part 1: pipeline metrics snapshot ---------------------------------

python3 - "$snap" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snap = json.load(f)  # parse failure -> traceback -> nonzero exit
counters = snap.get("counters", {})
missing = [k for k in ("sim.traces_built", "par.tasks",
                       "trace.windows_built", "train.epochs")
           if counters.get(k, 0) <= 0]
if missing:
    sys.exit(f"obs-smoke: missing or zero counters {missing}; "
             f"snapshot has {sorted(counters)}")
print("obs-smoke: snapshot ok", {k: counters[k] for k in sorted(counters)})
EOF

# ---- part 2: live serving telemetry ------------------------------------

workdir=$(mktemp -d)
srv_pid=
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

$GO build -o "$workdir/prismserve" ./cmd/prismserve
$GO build -o "$workdir/prismload" ./cmd/prismload
$GO build -o "$workdir/prismobs" ./cmd/prismobs

"$workdir/prismserve" -addr "$addr" -journal "$workdir/serve.jsonl" &
srv_pid=$!

"$workdir/prismload" -addr "$addr" -probe -probe-wait 30s
"$workdir/prismload" -addr "$addr" -sessions 10 -requests 20 \
    -journal "$workdir/load.jsonl" | tee "$workdir/load.out"

# Every answered request must have carried a trace header.
traced=$(sed -n 's/.*"traced":\([0-9]*\).*/\1/p' "$workdir/load.out")
untraced=$(sed -n 's/.*"untraced":\([0-9]*\).*/\1/p' "$workdir/load.out")
if [ "${traced:-0}" -eq 0 ] || [ "${untraced:-1}" -ne 0 ]; then
    echo "obs-smoke: tracing gap: traced=${traced:-0} untraced=${untraced:-?}" >&2
    exit 1
fi

# Scrape and structurally validate the live OpenMetrics exposition.
python3 - "$addr" <<'EOF'
import re
import sys
import urllib.request

addr = sys.argv[1]
with urllib.request.urlopen(f"http://{addr}/metrics?format=openmetrics") as resp:
    ctype = resp.headers.get("Content-Type", "")
    text = resp.read().decode()
if not ctype.startswith("application/openmetrics-text"):
    sys.exit(f"obs-smoke: wrong openmetrics content-type {ctype!r}")
if not text.endswith("# EOF\n"):
    sys.exit("obs-smoke: exposition does not end with # EOF")

name = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
sample = re.compile(
    rf"^({name})(\{{[^}}]*\}})? (\S+)( # \{{[^}}]*\}} \S+ \S+)?$")
cum, fam = {}, None
exemplars = 0
lines = text.rstrip("\n").split("\n")
for line in lines[:-1]:  # last is # EOF
    if line.startswith("# TYPE "):
        parts = line.split()
        if len(parts) != 4 or not re.fullmatch(name, parts[2]) \
                or parts[3] not in ("counter", "gauge", "histogram"):
            sys.exit(f"obs-smoke: bad TYPE line {line!r}")
        continue
    m = sample.match(line)
    if not m:
        sys.exit(f"obs-smoke: unparseable sample line {line!r}")
    metric = m.group(1)
    if metric.endswith("_bucket"):
        f = metric[:-len("_bucket")]
        count = int(m.group(3))
        if f == fam and count < cum.get(f, 0):
            sys.exit(f"obs-smoke: non-cumulative buckets at {line!r}")
        fam, cum[f] = f, count
        if f == "serve_latency_s" and m.group(4):
            if 'trace_id="' not in m.group(4):
                sys.exit(f"obs-smoke: exemplar without trace_id: {line!r}")
            exemplars += 1

if "serve_requests_total" not in text:
    sys.exit("obs-smoke: serve_requests_total missing from exposition")
if exemplars == 0:
    sys.exit("obs-smoke: no trace-ID exemplars on serve_latency_s buckets")
with urllib.request.urlopen(f"http://{addr}/metrics") as resp:
    import json
    snap = json.load(resp)
if snap["counters"].get("serve.requests", 0) <= 0:
    sys.exit("obs-smoke: JSON snapshot lost serve.requests")
print(f"obs-smoke: openmetrics ok ({len(lines)} lines, "
      f"{exemplars} latency exemplars)")
EOF

# Drain the server so its journal flushes, then inspect both journals.
kill -TERM "$srv_pid"
if ! wait "$srv_pid"; then
    echo "obs-smoke: server exited nonzero after SIGTERM" >&2
    exit 1
fi
srv_pid=

"$workdir/prismobs" blame -journal "$workdir/serve.jsonl" | tee "$workdir/blame.out"
grep -q "infer" "$workdir/blame.out" || {
    echo "obs-smoke: server-side blame has no infer stage" >&2; exit 1; }
"$workdir/prismobs" slo -journal "$workdir/serve.jsonl" \
    -objective 0.99 -latency 250ms | tee "$workdir/slo.out"
grep -q "availability" "$workdir/slo.out" || {
    echo "obs-smoke: slo output missing availability" >&2; exit 1; }
"$workdir/prismobs" blame -journal "$workdir/load.jsonl" | tee "$workdir/blame-client.out"
grep -q "rtt" "$workdir/blame-client.out" || {
    echo "obs-smoke: client-side blame has no rtt stage" >&2; exit 1; }
"$workdir/prismobs" grep -journal "$workdir/serve.jsonl" -ev trace \
    -where outcome=ok >/dev/null || {
    echo "obs-smoke: journal grep found no ok traces" >&2; exit 1; }

echo "obs-smoke: ok (snapshot, openmetrics, tracing, blame, slo)"
