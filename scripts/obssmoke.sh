#!/bin/sh
# obssmoke.sh <metrics-snapshot.json>
#
# Asserts that an instrumented run produced a parseable metrics snapshot
# with nonzero counters from every pipeline stage: sim (trace generation),
# par (worker pool), trace (windowing) and train (epoch loop). Used by
# `make obs-smoke` and the CI telemetry step.
set -eu

if [ $# -ne 1 ] || [ ! -r "$1" ]; then
    echo "usage: $0 <metrics-snapshot.json>" >&2
    exit 2
fi

python3 - "$1" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snap = json.load(f)  # parse failure -> traceback -> nonzero exit
counters = snap.get("counters", {})
missing = [k for k in ("sim.traces_built", "par.tasks",
                       "trace.windows_built", "train.epochs")
           if counters.get(k, 0) <= 0]
if missing:
    sys.exit(f"obs-smoke: missing or zero counters {missing}; "
             f"snapshot has {sorted(counters)}")
print("obs-smoke: ok", {k: counters[k] for k in sorted(counters)})
EOF
