package prism5g_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"prism5g"
)

func TestNewBaselineE(t *testing.T) {
	b := smallBundle(t)
	cfg := prism5g.ModelConfig{Hidden: 8, Epochs: 4, Seed: 1}
	p, err := prism5g.NewBaselineE("LSTM", b, cfg)
	if err != nil || p == nil {
		t.Fatalf("LSTM: %v, %v", p, err)
	}
	p, err = prism5g.NewBaselineE("nope", b, cfg)
	if err == nil {
		t.Fatal("unknown baseline returned no error")
	}
	if p != nil {
		t.Fatal("unknown baseline returned a predictor alongside the error")
	}
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "LSTM") {
		t.Fatalf("error not self-describing: %v", err)
	}
}

func TestGenerateFaultyDataset(t *testing.T) {
	plan := prism5g.FaultPlanAtSeverity(0.5)
	ds, rep := prism5g.GenerateFaultyDataset(prism5g.OpZ, prism5g.Walking, prism5g.Long, 7, &plan)
	if len(ds.Traces) == 0 || ds.NumSamples() == 0 {
		t.Fatal("empty degraded dataset")
	}
	if rep.Total() == 0 {
		t.Fatalf("severity-0.5 plan injected nothing: %+v", rep)
	}
	// Same seed, nil plan → the identical clean campaign.
	clean, cleanRep := prism5g.GenerateFaultyDataset(prism5g.OpZ, prism5g.Walking, prism5g.Long, 7, nil)
	if cleanRep.Total() != 0 {
		t.Fatalf("nil plan reported injections: %+v", cleanRep)
	}
	ref := prism5g.GenerateDataset(prism5g.OpZ, prism5g.Walking, prism5g.Long, 7)
	if clean.NumSamples() != ref.NumSamples() {
		t.Fatal("nil-plan campaign differs from GenerateDataset")
	}
}

// TrainRobust over a NaN-corrupted, gap-ridden dataset must complete
// without panicking and report its interventions — the PR's acceptance
// scenario.
func TestTrainRobustOnDegradedData(t *testing.T) {
	plan := prism5g.FaultPlanAtSeverity(0.7)
	ds, _ := prism5g.GenerateFaultyDataset(prism5g.OpZ, prism5g.Walking, prism5g.Long, 11, &plan)
	ds.Traces = ds.Traces[:4]

	vrep, rrep := prism5g.RepairDataset(ds)
	if vrep.OK() {
		t.Fatal("severity-0.7 dataset validated clean")
	}
	if rrep.Total() == 0 {
		t.Fatal("repair fixed nothing on a degraded dataset")
	}
	var verr *prism5g.ValidationError
	if !errors.As(vrep.Err(), &verr) {
		t.Fatalf("report error is %T, want *ValidationError", vrep.Err())
	}

	b := prism5g.Prepare(ds, 1)
	cfg := prism5g.ModelConfig{Hidden: 8, Epochs: 4, Seed: 1}
	res := prism5g.TrainRobust(prism5g.NewPrism5G(b, cfg), b)
	if res.Predictor == nil {
		t.Fatal("no predictor returned")
	}
	rmse := prism5g.EvaluateRMSE(res.Predictor, b.Test)
	if math.IsNaN(rmse) || math.IsInf(rmse, 0) {
		t.Fatalf("degraded-data RMSE is %v", rmse)
	}
	// Forecasts stay finite for the QoE layer.
	for _, w := range b.Test[:min(5, len(b.Test))] {
		for i, v := range res.Predictor.Predict(w) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("prediction[%d] = %v", i, v)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
