package prism5g_test

import (
	"math"
	"testing"

	"prism5g"
)

// smallBundle builds a reduced dataset for facade tests.
func smallBundle(t *testing.T) *prism5g.Bundle {
	t.Helper()
	ds := prism5g.GenerateDataset(prism5g.OpZ, prism5g.Walking, prism5g.Long, 5)
	// Trim traces for speed before preparing.
	for i := range ds.Traces {
		if len(ds.Traces[i].Samples) > 120 {
			ds.Traces[i].Samples = ds.Traces[i].Samples[:120]
		}
	}
	ds.Traces = ds.Traces[:4]
	return prism5g.Prepare(ds, 1)
}

func TestFacadeEndToEnd(t *testing.T) {
	b := smallBundle(t)
	if len(b.Train) == 0 || len(b.Val) == 0 || len(b.Test) == 0 {
		t.Fatal("empty split")
	}
	cfg := prism5g.ModelConfig{Hidden: 8, Epochs: 6, Seed: 1}
	m := prism5g.NewPrism5G(b, cfg)
	if m.Name() != "Prism5G" {
		t.Fatalf("name = %s", m.Name())
	}
	m.Train(b.Train, b.Val)
	rmse := prism5g.EvaluateRMSE(m, b.Test)
	if math.IsNaN(rmse) || rmse <= 0 || rmse > 1 {
		t.Fatalf("RMSE = %f", rmse)
	}
}

func TestFacadeBaselines(t *testing.T) {
	b := smallBundle(t)
	cfg := prism5g.ModelConfig{Hidden: 8, Epochs: 4, Seed: 1}
	for _, name := range prism5g.BaselineNames() {
		m := prism5g.NewBaseline(name, b, cfg)
		if m == nil {
			t.Fatalf("baseline %s not constructed", name)
		}
		if m.Name() != name {
			t.Fatalf("name mismatch: %s vs %s", m.Name(), name)
		}
	}
	if prism5g.NewBaseline("nope", b, cfg) != nil {
		t.Fatal("unknown baseline should be nil")
	}
	if len(prism5g.UEModems()) != 5 {
		t.Fatal("modem list wrong")
	}
}

func TestFacadeQoE(t *testing.T) {
	b := smallBundle(t)
	tr := &b.Dataset.Traces[0]
	vivo := prism5g.SimulateViVo(tr, b.Scaler, nil, false)
	if vivo.Frames == 0 {
		t.Fatal("no frames streamed")
	}
	abr := prism5g.SimulateABR(tr, b.Scaler, nil)
	if abr.Chunks == 0 {
		t.Fatal("no chunks streamed")
	}
	// With a trained model plugged in.
	cfg := prism5g.ModelConfig{Hidden: 8, Epochs: 4, Seed: 1}
	m := prism5g.NewPrism5G(b, cfg)
	m.Train(b.Train, b.Val)
	vivo2 := prism5g.SimulateViVo(tr, b.Scaler, m, true)
	if vivo2.Frames == 0 {
		t.Fatal("model-driven ViVo streamed nothing")
	}
}
