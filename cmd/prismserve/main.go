// Command prismserve is the prediction-as-a-service front end: a
// long-running HTTP/JSON server that holds a trained predictor in memory
// and serves per-UE aggregate-throughput forecasts from streaming feature
// updates (see internal/serve and DESIGN.md §12).
//
// Usage:
//
//	prismserve [-addr host:port] [-model NAME] [-seed N] [-epochs N]
//	           [-queue N] [-concurrency N] [-deadline D] [-idle-ttl D]
//	           [-max-sessions N] [-breaker-threshold N] [-breaker-open D]
//	           [-metrics file] [-journal file] [-pprof addr]
//
// The server bootstraps by generating a small simulated campaign, fitting
// the scaler and training the named model (default HarmonicMean, which is
// instant; any baseline name from the facade or "Prism5G" works, at the
// cost of a training pass at boot). POST /admin/swap retrains and installs
// a different model without dropping a request.
//
// SIGINT/SIGTERM trigger a graceful drain: /readyz flips to 503, in-flight
// requests finish (bounded by -drain-timeout) and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prism5g"
	"prism5g/internal/obs"
	"prism5g/internal/serve"
)

// slowPredictor delays every inference by a fixed amount — a load-testing
// aid that emulates a heavier model so the queue, deadline and shedding
// paths can be exercised with the instant harmonic-mean baseline.
type slowPredictor struct {
	prism5g.Predictor
	delay time.Duration
}

func (s *slowPredictor) Predict(w prism5g.Window) []float64 {
	time.Sleep(s.delay)
	return s.Predictor.Predict(w)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
	model := flag.String("model", "HarmonicMean", "model to serve: HarmonicMean, Prophet, LSTM, TCN, Lumos5G, GBDT, RF or Prism5G")
	seed := flag.Uint64("seed", 42, "seed for the bootstrap campaign and training")
	epochs := flag.Int("epochs", 10, "training epochs for neural models at boot/swap")
	traces := flag.Int("traces", 4, "bootstrap campaign traces")
	samples := flag.Int("samples", 120, "bootstrap samples per trace")
	queue := flag.Int("queue", 64, "bounded request queue capacity (beyond -concurrency); excess requests are shed with 429")
	concurrency := flag.Int("concurrency", 4, "max simultaneous inferences")
	deadline := flag.Duration("deadline", 250*time.Millisecond, "per-request budget; on expiry the harmonic-mean fallback answers")
	idleTTL := flag.Duration("idle-ttl", 2*time.Minute, "evict sessions idle this long")
	maxSessions := flag.Int("max-sessions", 10000, "hard cap on live sessions (LRU eviction beyond)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive model failures that open the circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 5*time.Second, "how long the breaker stays open before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown/swap drain bound")
	slow := flag.Duration("slow", 0, "artificially delay each inference (load-testing aid: emulates a heavier model so backpressure and timeout paths engage)")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismserve: %v", err)
	}
	// A server's metrics are not optional: /metrics must be live even
	// when no -metrics/-journal flag was given.
	obs.Default().SetEnabled(true)
	if a := tele.PprofAddr(); a != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", a)
	}

	fmt.Printf("prismserve: bootstrapping %s (seed=%d, %d traces x %d samples)\n",
		*model, *seed, *traces, *samples)
	ds := prism5g.GenerateDatasetSized(prism5g.OpZ, prism5g.Driving, prism5g.Long, *seed, *traces, *samples)
	bundle := prism5g.Prepare(ds, *seed)
	build := func(name string) (prism5g.Predictor, error) {
		var p prism5g.Predictor
		if name == "Prism5G" {
			p = prism5g.NewPrism5G(bundle, prism5g.ModelConfig{Epochs: *epochs, Seed: *seed})
		} else {
			var err error
			p, err = prism5g.NewBaselineE(name, bundle, prism5g.ModelConfig{Epochs: *epochs, Seed: *seed})
			if err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		rep := p.Train(bundle.Train, bundle.Val)
		fmt.Printf("prismserve: trained %s in %v (%s)\n", name, time.Since(t0).Round(time.Millisecond), rep)
		if *slow > 0 {
			p = &slowPredictor{Predictor: p, delay: *slow}
		}
		return p, nil
	}
	p, err := build(*model)
	if err != nil {
		log.Fatalf("prismserve: %v", err)
	}

	srv := serve.New(*model, p, bundle.Scaler, serve.Config{
		QueueCap:         *queue,
		Concurrency:      *concurrency,
		Deadline:         *deadline,
		IdleTTL:          *idleTTL,
		MaxSessions:      *maxSessions,
		BreakerThreshold: *breakerThreshold,
		BreakerOpenFor:   *breakerOpen,
		DrainTimeout:     *drainTimeout,
		Build:            build,
		Reg:              obs.Default(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("prismserve: %v", err)
	}
	fmt.Printf("prismserve: listening on %s model=%s queue=%d concurrency=%d deadline=%v\n",
		ln.Addr(), *model, *queue, *concurrency, *deadline)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("prismserve: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("prismserve: drain failed: %v", err)
		}
		<-done // http.ErrServerClosed after a clean shutdown
	case err := <-done:
		log.Fatalf("prismserve: serve: %v", err)
	}
	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			log.Fatalf("prismserve: %v", err)
		}
	}
	fmt.Println("prismserve: drained cleanly")
}
