// Command prismpop runs a city-scale population build: many UEs on a
// shared cell grid with per-cell contention and an optional rush-hour
// activity profile, streamed to a selectable sink.
//
// Usage:
//
//	prismpop [-op OpZ] [-scenario urban] [-mobility walking] [-modem X70]
//	         [-pop N] [-shardsize N] [-duration S] [-step S] [-seed N]
//	         [-workers N] [-sink memory|jsonl|discard] [-out file]
//	         [-rush-base F] [-rush-peak F] [-rush-at S] [-rush-width S]
//	         [-metrics file] [-journal file] [-pprof addr]
//
// The jsonl sink spills one trace per line to -out, keeping peak memory
// independent of the population size; discard counts and drops (for
// capacity measurements); memory materializes a dataset and prints its
// summary. The emitted stream is byte-identical at any -workers setting.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"prism5g/internal/mobility"
	"prism5g/internal/obs"
	"prism5g/internal/pop"
	"prism5g/internal/ran"
	"prism5g/internal/spectrum"
	"prism5g/internal/trace"
)

func parseScenario(s string) (mobility.Scenario, error) {
	for _, sc := range mobility.AllScenarios() {
		if strings.EqualFold(sc.String(), s) {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scenario %q (urban, suburban, beltway, indoor)", s)
}

func parseMobility(s string) (mobility.Mobility, error) {
	for _, m := range []mobility.Mobility{mobility.Stationary, mobility.Walking, mobility.Driving} {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mobility %q (stationary, walking, driving)", s)
}

func parseModem(s string) (ran.Modem, error) {
	for _, m := range ran.AllModems() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown modem %q (X50, X55, X60, X65, X70)", s)
}

func parseOperator(s string) (spectrum.Operator, error) {
	for _, op := range spectrum.AllOperators() {
		if strings.EqualFold(string(op), s) {
			return op, nil
		}
	}
	return "", fmt.Errorf("unknown operator %q (OpX, OpY, OpZ)", s)
}

func main() {
	opFlag := flag.String("op", "OpZ", "operator (OpX, OpY, OpZ)")
	scFlag := flag.String("scenario", "urban", "deployment scenario (urban, suburban, beltway, indoor)")
	mobFlag := flag.String("mobility", "walking", "mobility class (stationary, walking, driving)")
	modemFlag := flag.String("modem", "X70", "UE modem generation (X50..X70)")
	popSize := flag.Int("pop", 256, "population size (number of UEs)")
	shardSize := flag.Int("shardsize", 64, "UEs per shard (exact contention scope; partition is worker-independent)")
	duration := flag.Float64("duration", 60, "recorded seconds per UE")
	step := flag.Float64("step", 1, "sampling interval in seconds")
	seed := flag.Uint64("seed", 42, "campaign seed (grid, per-UE streams)")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU; output is identical at any setting")
	sinkKind := flag.String("sink", "memory", "trace sink: memory (materialize), jsonl (spill to -out), discard (count and drop)")
	out := flag.String("out", "pop.jsonl", "output path for the jsonl sink")
	rushBase := flag.Float64("rush-base", 0, "off-peak active fraction of the population (0 with rush-peak 0 = everyone active)")
	rushPeak := flag.Float64("rush-peak", 0, "rush-hour peak active fraction")
	rushAt := flag.Float64("rush-at", 0, "rush-hour peak time, seconds into the run")
	rushWidth := flag.Float64("rush-width", 0, "rush bump Gaussian width in seconds (0 = 600)")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	op, err := parseOperator(*opFlag)
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}
	sc, err := parseScenario(*scFlag)
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}
	mob, err := parseMobility(*mobFlag)
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}
	modem, err := parseModem(*modemFlag)
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	cfg := pop.Config{
		Operator: op, Scenario: sc, Mobility: mob, Modem: modem,
		Population: *popSize, ShardSize: *shardSize,
		DurationS: *duration, StepS: *step,
		Seed: *seed, Workers: *workers,
		Rush: pop.RushProfile{Base: *rushBase, Peak: *rushPeak, PeakAtS: *rushAt, WidthS: *rushWidth},
	}

	var sink trace.Sink
	var dataset *trace.Dataset
	switch *sinkKind {
	case "memory":
		dataset = &trace.Dataset{
			Name:  fmt.Sprintf("pop-%s-%s-%d", cfg.Operator, cfg.Mobility, cfg.Population),
			StepS: cfg.StepS,
		}
		sink = trace.NewDatasetSink(dataset)
	case "jsonl":
		s, err := trace.CreateJSONLSink(*out)
		if err != nil {
			log.Fatalf("prismpop: %v", err)
		}
		sink = s
	case "discard":
		sink = &trace.DiscardSink{}
	default:
		log.Fatalf("prismpop: unknown sink %q (memory, jsonl, discard)", *sinkKind)
	}

	rep, err := pop.Build(cfg, sink)
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("prismpop: %v", err)
	}

	fmt.Printf("population %d (%d shards): %d traces, %d samples, mean %.1f Mbps, deepest cell contention %d UEs\n",
		rep.Population, rep.Shards, rep.Traces, rep.Samples, rep.MeanAggMbps, rep.MaxAttached)
	if rep.Faults.Total() > 0 {
		fmt.Printf("faults: %d injected\n", rep.Faults.Total())
	}
	switch *sinkKind {
	case "memory":
		fmt.Printf("dataset %q: %d traces, %d samples in memory\n",
			dataset.Name, len(dataset.Traces), dataset.NumSamples())
	case "jsonl":
		fmt.Printf("spilled to %s\n", *out)
	}

	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			log.Fatalf("prismpop: %v", err)
		}
	}
}
