// Command prismobs is the journal/SLO inspector: it tails and replays the
// JSON-lines journals every CLI in this repository emits (-journal) and
// polls a live prismserve's /metrics, turning raw telemetry into the
// questions an operator actually asks — which stage ate this request's
// p99 (blame), is the error budget burning (slo), where is wall-clock
// going right now (top), what happened (tail, grep).
//
// Usage:
//
//	prismobs blame -journal serve.jsonl [-objective 0.999]
//	prismobs slo   -journal serve.jsonl | -addr host:port
//	               [-objective 0.999] [-latency 250ms] [-check]
//	prismobs top   -addr host:port [-interval 2s] [-iterations 1]
//	prismobs tail  -journal run.jsonl [-follow] [-ev substr]
//	prismobs grep  -journal run.jsonl [-ev substr] [-where k=v ...]
//
// blame consumes the "trace" events prismserve journals per request
// (decode/queue/breaker/infer/encode stage durations) — and the
// client-side ones prismload emits — and prints exact per-stage
// p50/p95/p99 with each stage's share of total request time. slo grades
// availability and latency compliance against an objective, from either a
// journal or a live /metrics scrape; with -check it exits nonzero while
// the budget is burning. top diffs two /metrics snapshots and ranks
// histogram families by wall-clock added between them. tail renders
// events live, including grid.progress/pop.progress done/total + ETA
// lines from long runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"prism5g/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var code int
	switch os.Args[1] {
	case "blame":
		code = cmdBlame(os.Args[2:])
	case "slo":
		code = cmdSLO(os.Args[2:])
	case "top":
		code = cmdTop(os.Args[2:])
	case "tail":
		code = cmdTail(os.Args[2:])
	case "grep":
		code = cmdGrep(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "prismobs: unknown subcommand %q\n", os.Args[1])
		usage()
		code = 2
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prismobs <blame|slo|top|tail|grep> [flags]
  blame -journal FILE                     per-stage p50/p95/p99 latency decomposition
  slo   -journal FILE | -addr HOST:PORT   availability + latency SLO burn rate
  top   -addr HOST:PORT                   histogram deltas between /metrics snapshots
  tail  -journal FILE [-follow]           render journal events (live with -follow)
  grep  -journal FILE [-ev X] [-where k=v] filter journal lines`)
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "prismobs: "+format+"\n", args...)
	return 1
}

// readJournal parses a whole journal file into events.
func readJournal(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadEvents(f)
}

// ms renders seconds as a compact millisecond figure.
func ms(s float64) string { return fmt.Sprintf("%.2fms", s*1e3) }

func cmdBlame(args []string) int {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file with trace events")
	fs.Parse(args)
	if *journal == "" {
		return fail("blame: -journal is required")
	}
	events, err := readJournal(*journal)
	if err != nil {
		return fail("blame: %v", err)
	}
	traces := obs.ExtractTraces(events)
	if len(traces) == 0 {
		return fail("blame: no trace events in %s (run the producer with -journal)", *journal)
	}
	fmt.Printf("prismobs blame: %d traces from %s\n", len(traces), *journal)
	fmt.Printf("  %-12s %7s %10s %10s %10s %10s %7s\n",
		"stage", "count", "p50", "p95", "p99", "mean", "share")
	for _, st := range obs.Blame(traces) {
		fmt.Printf("  %-12s %7d %10s %10s %10s %10s %6.1f%%\n",
			st.Stage, st.Count, ms(st.P50S), ms(st.P95S), ms(st.P99S), ms(st.MeanS), st.Share*100)
	}
	return 0
}

// fetchSnapshot scrapes a live /metrics endpoint's JSON form.
func fetchSnapshot(addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func cmdSLO(args []string) int {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file with trace events")
	addr := fs.String("addr", "", "live prismserve address to scrape instead of a journal")
	objective := fs.Float64("objective", 0.999, "availability/latency objective in [0,1]")
	latency := fs.Duration("latency", 250*time.Millisecond, "latency SLO target")
	check := fs.Bool("check", false, "exit 1 when either burn rate exceeds 1.0")
	fs.Parse(args)

	var rep obs.SLOReport
	var source string
	switch {
	case *journal != "":
		events, err := readJournal(*journal)
		if err != nil {
			return fail("slo: %v", err)
		}
		traces := obs.ExtractTraces(events)
		if len(traces) == 0 {
			return fail("slo: no trace events in %s", *journal)
		}
		rep = obs.SLOFromTraces(traces, *objective, latency.Seconds())
		source = *journal
	case *addr != "":
		snap, err := fetchSnapshot(*addr)
		if err != nil {
			return fail("slo: %v", err)
		}
		rep = obs.SLOFromSnapshot(snap, *objective, latency.Seconds())
		source = *addr
	default:
		return fail("slo: one of -journal or -addr is required")
	}

	fmt.Printf("prismobs slo: %d requests from %s, objective %.3f%%, latency target %v\n",
		rep.Total, source, *objective*100, *latency)
	fmt.Printf("  availability %8.3f%%  (good %d/%d)  burn %.2fx\n",
		rep.Availability*100, rep.Good, rep.Total, rep.AvailabilityBurn)
	fmt.Printf("  latency      %8.3f%% <= %v        burn %.2fx\n",
		rep.LatencyOK*100, *latency, rep.LatencyBurn)
	burning := rep.AvailabilityBurn > 1 || rep.LatencyBurn > 1
	if burning {
		fmt.Println("  verdict: BURNING (error budget exhausting faster than it accrues)")
	} else {
		fmt.Println("  verdict: OK")
	}
	if *check && burning {
		return 1
	}
	return 0
}

func cmdTop(args []string) int {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "", "prismserve address to poll")
	interval := fs.Duration("interval", 2*time.Second, "delta window between snapshots")
	iterations := fs.Int("iterations", 1, "number of delta windows to report (0 = forever)")
	fs.Parse(args)
	if *addr == "" {
		return fail("top: -addr is required")
	}
	prev, err := fetchSnapshot(*addr)
	if err != nil {
		return fail("top: %v", err)
	}
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		time.Sleep(*interval)
		cur, err := fetchSnapshot(*addr)
		if err != nil {
			return fail("top: %v", err)
		}
		deltas := obs.TopDelta(prev, cur)
		fmt.Printf("prismobs top: %s over %v\n", *addr, *interval)
		if len(deltas) == 0 {
			fmt.Println("  (no histogram movement)")
		}
		for _, d := range deltas {
			fmt.Printf("  %-26s +%6d obs  +%10s  mean %s\n", d.Name, d.DCount, ms(d.DSumS), ms(d.MeanS))
		}
		prev = cur
	}
	return 0
}

func cmdTail(args []string) int {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file to render")
	follow := fs.Bool("follow", false, "keep watching the file for appended events")
	evFilter := fs.String("ev", "", "only render events whose name contains this substring")
	fs.Parse(args)
	if *journal == "" {
		return fail("tail: -journal is required")
	}
	f, err := os.Open(*journal)
	if err != nil {
		return fail("tail: %v", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var partial []byte
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			line = append(partial, line...)
			partial = nil
			printEventLine(line, *evFilter)
			continue
		}
		if err != io.EOF {
			return fail("tail: %v", err)
		}
		// EOF: an incomplete trailing line stays buffered until the
		// writer finishes it (journals append whole lines, so this only
		// happens mid-write).
		partial = append(partial, line...)
		if !*follow {
			if len(partial) > 0 {
				printEventLine(partial, *evFilter)
			}
			return 0
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// printEventLine parses one journal line and renders it; unparseable
// lines pass through raw so tail never hides evidence.
func printEventLine(line []byte, evFilter string) {
	trimmed := strings.TrimSpace(string(line))
	if trimmed == "" {
		return
	}
	evs, err := obs.ReadEvents(strings.NewReader(trimmed))
	if err != nil || len(evs) != 1 {
		fmt.Println(trimmed)
		return
	}
	if evFilter != "" && !strings.Contains(evs[0].Name, evFilter) {
		return
	}
	fmt.Println(obs.FormatEvent(evs[0]))
}

// whereFlags collects repeated -where k=v field filters.
type whereFlags []string

func (w *whereFlags) String() string     { return strings.Join(*w, ",") }
func (w *whereFlags) Set(s string) error { *w = append(*w, s); return nil }

func cmdGrep(args []string) int {
	fs := flag.NewFlagSet("grep", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file to filter")
	evFilter := fs.String("ev", "", "only events whose name contains this substring")
	var where whereFlags
	fs.Var(&where, "where", "field filter k=v (repeatable, all must match)")
	fs.Parse(args)
	if *journal == "" {
		return fail("grep: -journal is required")
	}
	f, err := os.Open(*journal)
	if err != nil {
		return fail("grep: %v", err)
	}
	defer f.Close()

	filters := make(map[string]string, len(where))
	for _, w := range where {
		k, v, ok := strings.Cut(w, "=")
		if !ok {
			return fail("grep: -where wants k=v, got %q", w)
		}
		filters[k] = v
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	matched := 0
	for sc.Scan() {
		line := sc.Bytes()
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			continue
		}
		name, _ := raw["ev"].(string)
		if *evFilter != "" && !strings.Contains(name, *evFilter) {
			continue
		}
		ok := true
		for k, v := range filters {
			got, present := raw[k]
			if !present || fmt.Sprintf("%v", got) != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		fmt.Println(string(line))
		matched++
	}
	if err := sc.Err(); err != nil {
		return fail("grep: %v", err)
	}
	if matched == 0 {
		return 1 // grep convention: no matches is a nonzero exit
	}
	return 0
}
