// Command prismconform runs the paper-conformance suite: golden fixture
// comparison (at the fixture seed), the statistical invariants and the
// metamorphic properties. It exits 0 when every check passes and 1 on any
// violation, so CI can gate on it directly.
//
// Usage:
//
//	prismconform [-seed N] [-workers N] [-json] [-perturb tbs|corr] [-list]
//	             [-metrics file] [-journal file] [-pprof addr]
//
// The golden fixtures are embedded at build time, so the binary runs from
// any directory. -perturb corrupts the harness's own view of one artifact
// (the negative self-test: it must make the run fail).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prism5g/internal/conform"
	"prism5g/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", conform.DefaultSeed, "experiment seed (golden comparison only runs at the default)")
	workers := flag.Int("workers", 0, "worker pool bound for the underlying experiments (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable report instead of text")
	perturb := flag.String("perturb", "", "self-test perturbation: 'tbs' or 'corr' (the run must then fail)")
	list := flag.Bool("list", false, "list goldens and checks, then exit")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prismconform: %v\n", err)
		os.Exit(2)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, g := range conform.GoldenNames() {
			fmt.Printf("golden/%s\n", g)
		}
		for _, c := range conform.Checks() {
			fmt.Printf("%s (%s)\n", c.Name, c.Figs)
		}
		return
	}
	switch *perturb {
	case "":
	case "tbs":
		conform.Hooks.TBSDelta = -123456
	case "corr":
		conform.Hooks.CorrFlip = true
	default:
		fmt.Fprintf(os.Stderr, "prismconform: unknown -perturb %q (want tbs or corr)\n", *perturb)
		os.Exit(2)
	}

	rep := conform.RunAll(conform.NewCtx(conform.Config{Seed: *seed, Workers: *workers}))

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "prismconform: encode report: %v\n", err)
			os.Exit(2)
		}
	} else {
		printHuman(rep)
	}
	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prismconform: %v\n", err)
			os.Exit(2)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func printHuman(rep *conform.Report) {
	if rep.GoldensSkipped {
		fmt.Printf("goldens: skipped (seed %d != fixture seed %d)\n", rep.Seed, conform.DefaultSeed)
	}
	failed := 0
	show := func(results []conform.CheckResult) {
		for _, r := range results {
			status := "PASS"
			if !r.OK() {
				status = "FAIL"
				failed++
			}
			name := r.Name
			if r.Figs != "" {
				name += " (" + r.Figs + ")"
			}
			fmt.Printf("%s  %-45s %8.2fs\n", status, name, r.Elapsed.Seconds())
			for _, v := range r.Violations {
				fmt.Printf("      %s\n", v)
			}
		}
	}
	show(rep.Goldens)
	show(rep.Checks)
	total := len(rep.Goldens) + len(rep.Checks)
	if failed == 0 {
		fmt.Printf("conformance: %d/%d passed (seed %d)\n", total, total, rep.Seed)
	} else {
		fmt.Printf("conformance: %d/%d FAILED (seed %d)\n", failed, total, rep.Seed)
	}
}
