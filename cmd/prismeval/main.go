// Command prismeval runs the paper's learning evaluation: Table 4 (both
// time scales), the Table 13 ablation, Table 14 generalizability, the
// Fig 17/18 transition analysis and the §6.1 runtime comparison.
//
// Usage:
//
//	prismeval [-quick] [-seed N] [-table4|-ablation|-general|-series|-runtime|-all]
//	          [-metrics file] [-journal file] [-pprof addr]
//
// The telemetry flags are off by default; any of them enables the
// process-wide metrics registry (see DESIGN.md "Observability") without
// changing any computed artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"prism5g/internal/experiments"
	"prism5g/internal/mobility"
	"prism5g/internal/obs"
	"prism5g/internal/pop"
	"prism5g/internal/predictors"
	"prism5g/internal/ran"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
	"prism5g/internal/trace"
)

func main() {
	quick := flag.Bool("quick", true, "use the small configuration (the paper-scale run takes ~1 h)")
	seed := flag.Uint64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU, 1 = legacy serial; results are identical at any setting")
	doTable4 := flag.Bool("table4", false, "run Table 4 (both granularities)")
	doAblation := flag.Bool("ablation", false, "run the Table 13 ablation")
	doGeneral := flag.Bool("general", false, "run Table 14 generalizability")
	doSeries := flag.Bool("series", false, "run the Fig 17/18 transition analysis")
	doRuntime := flag.Bool("runtime", false, "run the §6.1 runtime comparison")
	doRobust := flag.Bool("robust", false, "run the fault-severity robustness sweep")
	doPop := flag.Bool("population", false, "run the population streaming pipeline: pop build -> JSONL spill -> streamed windows -> streamed training")
	doAll := flag.Bool("all", false, "run everything")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismeval: %v", err)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	cfg := experiments.PaperMLConfig(*seed)
	if *quick {
		cfg = experiments.QuickMLConfig(*seed)
	}
	cfg.Workers = *workers
	if !(*doTable4 || *doAblation || *doGeneral || *doSeries || *doRuntime || *doRobust || *doPop) {
		*doAll = true
	}

	if *doAll || *doTable4 {
		for _, g := range []sim.Granularity{sim.Short, sim.Long} {
			fmt.Printf("== Table 4 (%s scale) ==\n", g)
			res := experiments.Table4(g, cfg)
			fmt.Println(res.Format())
		}
	}
	if *doAll || *doAblation {
		fmt.Println("== Table 13 ablation (OpZ driving) ==")
		for _, g := range []sim.Granularity{sim.Short, sim.Long} {
			spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: g}
			res := experiments.Table13Ablation(spec, cfg)
			fmt.Printf("%-22s full=%.4f noState=%.4f (+%.1f%%) noFusion=%.4f (+%.1f%%)\n",
				res.Dataset, res.Full,
				res.NoState, 100*(res.NoState/res.Full-1),
				res.NoFusion, 100*(res.NoFusion/res.Full-1))
		}
	}
	if *doAll || *doGeneral {
		fmt.Println("\n== Table 14 generalizability (OpZ walking, 1 s scale) ==")
		for _, res := range experiments.Table14Generalizability(cfg) {
			fmt.Printf("%-28s", res.Case)
			for _, m := range []string{"Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"} {
				if v, ok := res.Results[m]; ok {
					fmt.Printf("  %s=%.4f", m, v)
				}
			}
			fmt.Println()
		}
	}
	if *doAll || *doSeries {
		fmt.Println("\n== Fig 17/18 transition analysis (OpZ driving, 10 ms scale) ==")
		spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: sim.Short}
		res := experiments.Fig17PredictionSeries(spec, cfg)
		fmt.Printf("replayed %d prediction points over %d transitions\n", len(res.T), len(res.TransitionIdx))
		tr := res.TransitionRMSE(15)
		fmt.Printf("%-10s %18s %18s\n", "Model", "RMSE@transition", "RMSE elsewhere")
		for _, m := range []string{"Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"} {
			if v, ok := tr[m]; ok {
				fmt.Printf("%-10s %15.0f M %15.0f M\n", m, v[0], v[1])
			}
		}
	}
	if *doAll || *doRuntime {
		fmt.Println("\n== Runtime (§6.1) ==")
		for _, r := range experiments.RuntimeComparison(cfg) {
			fmt.Printf("%-10s train %-10v infer %v/sample\n", r.Model, r.TrainTime.Round(1e6), r.InferPerSample)
		}
	}
	if *doAll || *doRobust {
		fmt.Println("\n== Robustness: RMSE vs fault severity (OpZ driving, 1 s scale) ==")
		spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: sim.Long}
		res := experiments.RobustnessSweep(spec, experiments.DefaultSeverities(), cfg)
		fmt.Println(res.Format())
	}
	if *doAll || *doPop {
		fmt.Println("\n== Population streaming pipeline (OpZ urban walking) ==")
		if err := runPopulation(*quick, *seed, *workers); err != nil {
			log.Fatalf("prismeval: population: %v", err)
		}
	}
	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			log.Fatalf("prismeval: %v", err)
		}
	}
}

// splitSink routes every everyN-th trace to val and the rest to train —
// the trace-level split a streamed population uses instead of a shuffled
// in-memory one.
type splitSink struct {
	train, val trace.Sink
	everyN     int
	n          int
}

func (s *splitSink) Emit(tr trace.Trace) error {
	i := s.n
	s.n++
	if s.everyN > 0 && i%s.everyN == s.everyN-1 {
		return s.val.Emit(tr)
	}
	return s.train.Emit(tr)
}

func (s *splitSink) Close() error {
	terr := s.train.Close()
	verr := s.val.Close()
	if terr != nil {
		return terr
	}
	return verr
}

// runPopulation exercises the constant-memory population path end to end:
// the population streams through JSONL spill files (never materialized),
// the scaler fits incrementally over the training spill, and the LSTM
// baseline trains from streamed window chunks.
func runPopulation(quick bool, seed uint64, workers int) error {
	popN, dur := 512, 60.0
	if quick {
		popN, dur = 48, 30.0
	}
	dir, err := os.MkdirTemp("", "prismpop")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	trainPath := filepath.Join(dir, "train.jsonl")
	valPath := filepath.Join(dir, "val.jsonl")
	trainSink, err := trace.CreateJSONLSink(trainPath)
	if err != nil {
		return err
	}
	valSink, err := trace.CreateJSONLSink(valPath)
	if err != nil {
		return err
	}
	sink := &splitSink{train: trainSink, val: valSink, everyN: 5}

	cfg := pop.Config{
		Operator: spectrum.OpZ, Scenario: mobility.Urban, Mobility: mobility.Walking,
		Modem: ran.ModemX70, Population: popN,
		DurationS: dur, StepS: 1, Seed: seed, Workers: workers,
		Rush: pop.RushProfile{Base: 0.4, Peak: 1, PeakAtS: dur / 2, WidthS: dur / 4},
	}
	rep, err := pop.Build(cfg, sink)
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("population %d (%d shards): %d traces spilled, mean %.1f Mbps, deepest cell contention %d UEs\n",
		rep.Population, rep.Shards, rep.Traces, rep.MeanAggMbps, rep.MaxAttached)

	src, err := trace.OpenJSONLSource(trainPath)
	if err != nil {
		return err
	}
	defer src.Close()
	var sc trace.Scaler
	sc.BeginFit()
	for {
		tr, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		sc.ObserveTrace(tr)
	}
	sc.FinishFit()
	if err := src.Reset(); err != nil {
		return err
	}
	valSrc, err := trace.OpenJSONLSource(valPath)
	if err != nil {
		return err
	}
	defer valSrc.Close()

	opts := trace.WindowOpts{History: 10, Horizon: 10, Stride: 1}
	topts := predictors.TrainOpts{Epochs: 30, Batch: 64, LR: 0.01, Patience: 6, Seed: seed}
	m := predictors.NewLSTMPredictor(16, 10, topts)
	trep, err := predictors.TrainLoopStream(m,
		trace.StreamWindows(src, &sc, opts),
		trace.StreamWindows(valSrc, &sc, opts), topts)
	if err != nil {
		return err
	}
	fmt.Printf("streamed training: %d epochs, val RMSE %.4f (scaled), train RMSE %.4f, %v\n",
		trep.Epochs, trep.ValRMSE, trep.TrainRMSE, trep.Duration.Round(1e6))
	return nil
}
