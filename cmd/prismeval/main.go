// Command prismeval runs the paper's learning evaluation: Table 4 (both
// time scales), the Table 13 ablation, Table 14 generalizability, the
// Fig 17/18 transition analysis and the §6.1 runtime comparison.
//
// Usage:
//
//	prismeval [-quick] [-seed N] [-table4|-ablation|-general|-series|-runtime|-all]
//	          [-metrics file] [-journal file] [-pprof addr]
//
// The telemetry flags are off by default; any of them enables the
// process-wide metrics registry (see DESIGN.md "Observability") without
// changing any computed artifact.
package main

import (
	"flag"
	"fmt"
	"log"

	"prism5g/internal/experiments"
	"prism5g/internal/mobility"
	"prism5g/internal/obs"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
)

func main() {
	quick := flag.Bool("quick", true, "use the small configuration (the paper-scale run takes ~1 h)")
	seed := flag.Uint64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU, 1 = legacy serial; results are identical at any setting")
	doTable4 := flag.Bool("table4", false, "run Table 4 (both granularities)")
	doAblation := flag.Bool("ablation", false, "run the Table 13 ablation")
	doGeneral := flag.Bool("general", false, "run Table 14 generalizability")
	doSeries := flag.Bool("series", false, "run the Fig 17/18 transition analysis")
	doRuntime := flag.Bool("runtime", false, "run the §6.1 runtime comparison")
	doRobust := flag.Bool("robust", false, "run the fault-severity robustness sweep")
	doAll := flag.Bool("all", false, "run everything")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismeval: %v", err)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	cfg := experiments.PaperMLConfig(*seed)
	if *quick {
		cfg = experiments.QuickMLConfig(*seed)
	}
	cfg.Workers = *workers
	if !(*doTable4 || *doAblation || *doGeneral || *doSeries || *doRuntime || *doRobust) {
		*doAll = true
	}

	if *doAll || *doTable4 {
		for _, g := range []sim.Granularity{sim.Short, sim.Long} {
			fmt.Printf("== Table 4 (%s scale) ==\n", g)
			res := experiments.Table4(g, cfg)
			fmt.Println(res.Format())
		}
	}
	if *doAll || *doAblation {
		fmt.Println("== Table 13 ablation (OpZ driving) ==")
		for _, g := range []sim.Granularity{sim.Short, sim.Long} {
			spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: g}
			res := experiments.Table13Ablation(spec, cfg)
			fmt.Printf("%-22s full=%.4f noState=%.4f (+%.1f%%) noFusion=%.4f (+%.1f%%)\n",
				res.Dataset, res.Full,
				res.NoState, 100*(res.NoState/res.Full-1),
				res.NoFusion, 100*(res.NoFusion/res.Full-1))
		}
	}
	if *doAll || *doGeneral {
		fmt.Println("\n== Table 14 generalizability (OpZ walking, 1 s scale) ==")
		for _, res := range experiments.Table14Generalizability(cfg) {
			fmt.Printf("%-28s", res.Case)
			for _, m := range []string{"Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"} {
				if v, ok := res.Results[m]; ok {
					fmt.Printf("  %s=%.4f", m, v)
				}
			}
			fmt.Println()
		}
	}
	if *doAll || *doSeries {
		fmt.Println("\n== Fig 17/18 transition analysis (OpZ driving, 10 ms scale) ==")
		spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: sim.Short}
		res := experiments.Fig17PredictionSeries(spec, cfg)
		fmt.Printf("replayed %d prediction points over %d transitions\n", len(res.T), len(res.TransitionIdx))
		tr := res.TransitionRMSE(15)
		fmt.Printf("%-10s %18s %18s\n", "Model", "RMSE@transition", "RMSE elsewhere")
		for _, m := range []string{"Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"} {
			if v, ok := tr[m]; ok {
				fmt.Printf("%-10s %15.0f M %15.0f M\n", m, v[0], v[1])
			}
		}
	}
	if *doAll || *doRuntime {
		fmt.Println("\n== Runtime (§6.1) ==")
		for _, r := range experiments.RuntimeComparison(cfg) {
			fmt.Printf("%-10s train %-10v infer %v/sample\n", r.Model, r.TrainTime.Round(1e6), r.InferPerSample)
		}
	}
	if *doAll || *doRobust {
		fmt.Println("\n== Robustness: RMSE vs fault severity (OpZ driving, 1 s scale) ==")
		spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: sim.Long}
		res := experiments.RobustnessSweep(spec, experiments.DefaultSeverities(), cfg)
		fmt.Println(res.Format())
	}
	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			log.Fatalf("prismeval: %v", err)
		}
	}
}
