// Command prismtrain trains one throughput predictor on one sub-dataset and
// reports its test RMSE — the single-cell view of paper Table 4.
//
// Usage:
//
//	prismtrain [-model Prism5G] [-op OpZ] [-mobility driving] [-gran short]
//	           [-quick] [-seed N] [-metrics file] [-journal file] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"prism5g/internal/experiments"
	"prism5g/internal/mobility"
	"prism5g/internal/obs"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
)

func main() {
	model := flag.String("model", "Prism5G", "Prophet, LSTM, TCN, Lumos5G, GBDT, RF, Prism5G, Prism5G-NoState or Prism5G-NoFusion")
	op := flag.String("op", "OpZ", "operator")
	mob := flag.String("mobility", "driving", "walking or driving")
	gran := flag.String("gran", "short", "short (10ms) or long (1s)")
	quick := flag.Bool("quick", false, "use the small CI-sized configuration")
	seed := flag.Uint64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "worker pool size: 0 = one per CPU, 1 = legacy serial; results are identical at any setting")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismtrain: %v", err)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	g := sim.Long
	if *gran == "short" {
		g = sim.Short
	}
	m := mobility.Driving
	if *mob == "walking" {
		m = mobility.Walking
	}
	spec := sim.SubDatasetSpec{Operator: spectrum.Operator(*op), Mobility: m, Gran: g}

	if !experiments.IsKnownModel(*model) {
		log.Fatalf("unknown model %q; known models: %s", *model, strings.Join(experiments.KnownModels(), ", "))
	}

	cfg := experiments.PaperMLConfig(*seed)
	if *quick {
		cfg = experiments.QuickMLConfig(*seed)
	}
	cfg.Models = []string{*model}
	cfg.Workers = *workers

	fmt.Printf("training %s on %s ...\n", *model, spec.Name())
	cells := experiments.Table4Cell(spec, cfg)
	if len(cells) == 0 {
		log.Fatal("no result")
	}
	c := cells[0]
	fmt.Printf("%s on %s: test RMSE %.4f (%d epochs, %v)\n",
		c.Model, c.Dataset, c.RMSE, c.Epochs, c.TrainTime.Round(1e6))
	if tele.Active() {
		fmt.Println(tele.Summary())
		if err := tele.Close(); err != nil {
			log.Fatalf("prismtrain: %v", err)
		}
	}
}
