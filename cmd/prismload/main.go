// Command prismload replays concurrent simulated UE sessions against a
// running prismserve instance and reports latency percentiles, throughput
// and outcome counts. It is the closed-loop half of the serving story: the
// sessions it replays come from the same internal/sim campaign generator
// the server bootstraps from, so feature distributions match.
//
// Usage:
//
//	prismload [-addr host:port] [-sessions N] [-requests N] [-seed N]
//	          [-timeout D] [-max-backoff D] [-chaos] [-probe] [-probe-wait D]
//	          [-metrics FILE] [-journal FILE]
//
// With -journal, prismload records the client half of the tracing story:
// every answered request's X-Prism-Trace ID lands in a client-side trace
// event (round-trip and response-decode stage timings), so `prismobs
// blame -journal load.jsonl` decomposes latency as the client saw it and
// the shared trace IDs join client and server journals. -metrics writes a
// snapshot whose load.request_s histogram carries those IDs as exemplars.
//
// With -chaos, a seeded fraction of iterations misbehave on purpose —
// slow-loris dribble, malformed payloads, mid-request disconnects, request
// bursts — each behavior drawing from its own rng stream derived from
// (seed ^ behavior-salt), the internal/faults discipline, so chaos runs
// are reproducible and behaviors are independently toggleable in code.
//
// Exit status is 0 only if the server never answered 5xx, never produced
// an unexpected transport failure on a well-formed request, never accepted
// a malformed payload, and was still healthy at the end of the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"prism5g"
	"prism5g/internal/obs"
	"prism5g/internal/serve"
	"prism5g/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "prismserve address")
	sessions := flag.Int("sessions", 50, "concurrent UE sessions")
	requests := flag.Int("requests", 30, "requests per session")
	seed := flag.Uint64("seed", 42, "seed for session traces and chaos schedules")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	maxBackoff := flag.Duration("max-backoff", 1*time.Second, "cap on honored Retry-After sleeps")
	chaos := flag.Bool("chaos", false, "inject slow-loris, malformed payloads, disconnects and bursts")
	probe := flag.Bool("probe", false, "probe /healthz and /readyz and exit (0 iff both 200)")
	probeWait := flag.Duration("probe-wait", 0, "with -probe: keep retrying for this long before giving up")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *probe {
		os.Exit(runProbe(*addr, *probeWait))
	}
	cli, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prismload:", err)
		os.Exit(1)
	}
	code := runLoad(*addr, *sessions, *requests, *seed, *timeout, *maxBackoff, *chaos)
	if err := cli.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prismload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// runProbe checks /healthz and /readyz, retrying up to wait (so smoke
// scripts can start the server and probe without shell sleep loops).
func runProbe(addr string, wait time.Duration) int {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		healthy := endpointOK(client, addr, "/healthz")
		ready := endpointOK(client, addr, "/readyz")
		if healthy && ready {
			fmt.Printf("prismload: probe %s healthz=ok readyz=ok\n", addr)
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Printf("prismload: probe %s healthz=%v readyz=%v\n", addr, healthy, ready)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func endpointOK(client *http.Client, addr, path string) bool {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// stats aggregates outcomes across all session workers.
type stats struct {
	mu        sync.Mutex
	latencies []float64 // seconds, well-formed answered requests only

	ok, warmup, degraded, shed, unavailable int
	clientErrs, serverErrs, transportErrs   int
	traced, untraced                        int // answered requests with/without X-Prism-Trace

	chaosMalformed, chaosMalformedBad       int
	chaosLoris, chaosDisconnect, chaosBurst int
}

func (st *stats) record(outcome string, latency time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if latency > 0 {
		st.latencies = append(st.latencies, latency.Seconds())
	}
	switch outcome {
	case "ok":
		st.ok++
	case "warmup":
		st.warmup++
	case "degraded":
		st.degraded++
	case "shed":
		st.shed++
	case "unavailable":
		st.unavailable++
	case "client-error":
		st.clientErrs++
	case "server-error":
		st.serverErrs++
	case "transport-error":
		st.transportErrs++
	}
}

// noteTrace tallies whether an answered request carried a trace header.
func (st *stats) noteTrace(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id != "" {
		st.traced++
	} else {
		st.untraced++
	}
}

func runLoad(addr string, sessions, requests int, seed uint64, timeout, maxBackoff time.Duration, chaos bool) int {
	nTraces := sessions
	if nTraces > 8 {
		nTraces = 8
	}
	if nTraces < 1 {
		nTraces = 1
	}
	perTrace := requests + 16
	if perTrace < 64 {
		perTrace = 64
	}
	fmt.Printf("prismload: %d sessions x %d requests against %s (seed=%d chaos=%v)\n",
		sessions, requests, addr, seed, chaos)
	ds := prism5g.GenerateDatasetSized(prism5g.OpZ, prism5g.Driving, prism5g.Long, seed, nTraces, perTrace)

	st := &stats{}
	client := &http.Client{Timeout: timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runSession(client, addr, fmt.Sprintf("ue-%04d", w),
				ds.Traces[w%len(ds.Traces)].Samples, requests,
				newChaosRig(seed, w, chaos), st, maxBackoff)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	healthyAfter := endpointOK(client, addr, "/healthz")
	return report(st, elapsed, chaos, healthyAfter)
}

// runSession replays one UE's samples, one per request, so the server-side
// sliding window fills exactly as it would from a live stream.
func runSession(client *http.Client, addr, id string, samples []trace.Sample,
	requests int, rig *chaosRig, st *stats, maxBackoff time.Duration) {
	for i := 0; i < requests; i++ {
		switch rig.pick() {
		case actMalformed:
			rig.sendMalformed(client, addr, st)
			continue
		case actLoris:
			rig.slowLoris(addr, st)
			continue
		case actDisconnect:
			rig.disconnect(addr, st)
			continue
		case actBurst:
			st.mu.Lock()
			st.chaosBurst++
			st.mu.Unlock()
			var bwg sync.WaitGroup
			for b := 0; b < 8; b++ {
				bwg.Add(1)
				go func(b int) {
					defer bwg.Done()
					s := samples[(i+b)%len(samples)]
					sendForecast(client, addr, id, s, st, maxBackoff)
				}(b)
			}
			bwg.Wait()
			continue
		}
		sendForecast(client, addr, id, samples[i%len(samples)], st, maxBackoff)
	}
}

// sendForecast posts one well-formed sample and classifies the outcome.
// Every answered request counts somewhere — "zero dropped" means the sum
// of categories equals the number of sends. With telemetry on, each
// answered request also records a client-side view of the server's trace:
// the latency lands in the load.request_s histogram with the server's
// X-Prism-Trace ID as exemplar, and a trace event with round-trip and
// decode stage timings joins the journal.
func sendForecast(client *http.Client, addr, id string, s trace.Sample, st *stats, maxBackoff time.Duration) {
	body, err := json.Marshal(serve.Request{Session: id, Samples: []trace.Sample{s}})
	if err != nil {
		st.record("client-error", 0)
		return
	}
	t0 := time.Now()
	resp, err := client.Post("http://"+addr+"/v1/forecast", "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		st.record("transport-error", 0)
		return
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get(serve.TraceHeader)
	st.noteTrace(traceID)

	var outcome string
	var decodeS float64
	switch {
	case resp.StatusCode == http.StatusOK:
		var fr serve.Response
		d0 := time.Now()
		err := json.NewDecoder(resp.Body).Decode(&fr)
		decodeS = time.Since(d0).Seconds()
		switch {
		case err != nil:
			outcome = "server-error"
		case fr.Warmup:
			outcome = "warmup"
		case fr.Degraded:
			outcome = "degraded"
		default:
			outcome = "ok"
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		outcome = "shed"
	case resp.StatusCode == http.StatusServiceUnavailable:
		outcome = "unavailable"
	case resp.StatusCode >= 500:
		outcome = "server-error"
	default:
		outcome = "client-error"
	}
	st.record(outcome, lat)
	if obs.Enabled() {
		obs.ObserveEx("load.request_s", lat.Seconds(), traceID)
		obs.Emit("trace", map[string]any{
			"trace": traceID, "session": id, "outcome": outcome,
			"total_s": lat.Seconds() + decodeS,
			"rtt_s":   lat.Seconds(), "resp_decode_s": decodeS,
		})
	}
	if outcome == "shed" || outcome == "unavailable" {
		sleepRetryAfter(resp, maxBackoff)
	}
}

// sleepRetryAfter honors a Retry-After header, capped so load runs finish.
func sleepRetryAfter(resp *http.Response, maxBackoff time.Duration) {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return
	}
	d := time.Duration(secs) * time.Second
	if d > maxBackoff {
		d = maxBackoff
	}
	time.Sleep(d)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(st *stats, elapsed time.Duration, chaos, healthyAfter bool) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	sort.Float64s(st.latencies)
	answered := st.ok + st.warmup + st.degraded + st.shed + st.unavailable + st.clientErrs + st.serverErrs
	p50 := percentile(st.latencies, 0.50) * 1000
	p99 := percentile(st.latencies, 0.99) * 1000
	max := 0.0
	if n := len(st.latencies); n > 0 {
		max = st.latencies[n-1] * 1000
	}
	rate := float64(st.ok+st.warmup+st.degraded) / elapsed.Seconds()

	fmt.Printf("prismload: done in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  latency    p50=%.1fms p99=%.1fms max=%.1fms over %d answered requests\n",
		p50, p99, max, len(st.latencies))
	fmt.Printf("  throughput %.0f forecasts/s\n", rate)
	fmt.Printf("  outcomes   ok=%d warmup=%d degraded=%d shed=%d unavailable=%d\n",
		st.ok, st.warmup, st.degraded, st.shed, st.unavailable)
	fmt.Printf("  errors     client=%d server=%d transport=%d\n",
		st.clientErrs, st.serverErrs, st.transportErrs)
	fmt.Printf("  tracing    traced=%d untraced=%d\n", st.traced, st.untraced)
	if chaos {
		fmt.Printf("  chaos      malformed=%d (accepted=%d) slowloris=%d disconnect=%d burst=%d\n",
			st.chaosMalformed, st.chaosMalformedBad, st.chaosLoris, st.chaosDisconnect, st.chaosBurst)
	}
	fmt.Printf("  health     post-run healthz ok=%v\n", healthyAfter)

	summary := map[string]any{
		"p50_ms": p50, "p99_ms": p99, "max_ms": max,
		"forecasts_per_s": rate, "answered": answered,
		"ok": st.ok, "warmup": st.warmup, "degraded": st.degraded,
		"shed": st.shed, "unavailable": st.unavailable,
		"client_errors": st.clientErrs, "server_errors": st.serverErrs,
		"transport_errors": st.transportErrs,
		"traced":           st.traced, "untraced": st.untraced,
		"chaos_malformed": st.chaosMalformed, "chaos_malformed_accepted": st.chaosMalformedBad,
		"chaos_slowloris": st.chaosLoris, "chaos_disconnect": st.chaosDisconnect,
		"chaos_burst":   st.chaosBurst,
		"healthy_after": healthyAfter,
	}
	js, _ := json.Marshal(summary)
	fmt.Printf("prismload-summary: %s\n", js)

	fail := st.serverErrs > 0 || st.transportErrs > 0 || st.chaosMalformedBad > 0 || !healthyAfter
	if !chaos && st.clientErrs > 0 {
		// Well-formed traffic must never draw a 4xx outside chaos runs.
		fail = true
	}
	if fail {
		fmt.Println("prismload: FAIL")
		return 1
	}
	fmt.Println("prismload: PASS")
	return 0
}
