package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"prism5g/internal/rng"
)

// Per-behavior rng salts, following the internal/faults discipline: each
// chaos behavior owns a private stream derived from (seed ^ salt), mixed
// with the worker index, so behaviors are independently reproducible and
// enabling one never perturbs another's schedule.
const (
	saltMalformed  = 0x4d_41_4c // "MAL"
	saltLoris      = 0x4c_52_53 // "LRS"
	saltDisconnect = 0x44_43_4e // "DCN"
	saltBurst      = 0x42_53_54 // "BST"
)

// Per-iteration firing probabilities. Mutually exclusive by evaluation
// order; roughly one iteration in four misbehaves during a chaos run.
const (
	pMalformed  = 0.12
	pLoris      = 0.04
	pDisconnect = 0.06
	pBurst      = 0.04
)

type chaosAction int

const (
	actNone chaosAction = iota
	actMalformed
	actLoris
	actDisconnect
	actBurst
)

// chaosRig holds one worker's chaos schedule. Each behavior draws from its
// own stream; a disabled rig (plain load run) always picks actNone.
type chaosRig struct {
	enabled   bool
	malformed *rng.Source
	loris     *rng.Source
	hangup    *rng.Source
	burst     *rng.Source
	payload   *rng.Source // variant selection within sendMalformed
}

func newChaosRig(seed uint64, worker int, enabled bool) *chaosRig {
	mix := uint64(worker+1) * 0x9e3779b97f4a7c15
	return &chaosRig{
		enabled:   enabled,
		malformed: rng.New(seed ^ saltMalformed ^ mix),
		loris:     rng.New(seed ^ saltLoris ^ mix),
		hangup:    rng.New(seed ^ saltDisconnect ^ mix),
		burst:     rng.New(seed ^ saltBurst ^ mix),
		payload:   rng.New(seed ^ saltMalformed ^ saltLoris ^ mix),
	}
}

// pick decides this iteration's behavior. Every stream is advanced every
// iteration regardless of earlier matches, so one behavior's schedule does
// not depend on another's outcome.
func (r *chaosRig) pick() chaosAction {
	if r == nil || !r.enabled {
		return actNone
	}
	m := r.malformed.Bool(pMalformed)
	l := r.loris.Bool(pLoris)
	d := r.hangup.Bool(pDisconnect)
	b := r.burst.Bool(pBurst)
	switch {
	case m:
		return actMalformed
	case l:
		return actLoris
	case d:
		return actDisconnect
	case b:
		return actBurst
	}
	return actNone
}

// sendMalformed posts a deliberately broken payload. The server must answer
// with a 4xx — a 2xx (accepted garbage) or 5xx (handler blew up) is a
// serving failure and fails the run.
func (r *chaosRig) sendMalformed(client *http.Client, addr string, st *stats) {
	var body []byte
	switch r.payload.Intn(5) {
	case 0: // truncated JSON
		body = []byte(`{"session":"chaos","samples":[{"T":0,"AggTput":`)
	case 1: // binary garbage
		body = make([]byte, 64)
		for i := range body {
			body[i] = byte(r.payload.Intn(256))
		}
	case 2: // oversized body (over the server's 256 KiB default cap)
		body = []byte(`{"session":"chaos","samples":[{"T":0,"AggTput":1,"pad":"` +
			strings.Repeat("a", 300_000) + `"}]}`)
	case 3: // session ID over the 128-byte limit
		body = []byte(`{"session":"` + strings.Repeat("x", 256) +
			`","samples":[{"T":0,"AggTput":1}]}`)
	case 4: // wrong types
		body = []byte(`{"session":12345,"samples":"nope"}`)
	}
	st.mu.Lock()
	st.chaosMalformed++
	st.mu.Unlock()
	resp, err := client.Post("http://"+addr+"/v1/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		// The server may legitimately slam the connection shut on an
		// oversized body; a transport error here is not a failure.
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		st.mu.Lock()
		st.chaosMalformedBad++
		st.mu.Unlock()
	}
}

// slowLoris opens a raw connection, sends complete headers that promise a
// body, then dribbles single bytes. The server's read timeouts must shed
// the connection rather than hold a handler goroutine forever; the client
// gives up after a bounded budget so chaos runs stay fast.
func (r *chaosRig) slowLoris(addr string, st *stats) {
	st.mu.Lock()
	st.chaosLoris++
	st.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	head := fmt.Sprintf("POST /v1/forecast HTTP/1.1\r\nHost: %s\r\n"+
		"Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n", addr)
	if _, err := conn.Write([]byte(head)); err != nil {
		return
	}
	budget := time.Duration(800+r.loris.Intn(700)) * time.Millisecond
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if _, err := conn.Write([]byte{'{'}); err != nil {
			return // server shed us — exactly what we want
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// disconnect sends headers plus half a body and hangs up mid-request. The
// handler must treat the aborted read as a client error, not a crash.
func (r *chaosRig) disconnect(addr string, st *stats) {
	st.mu.Lock()
	st.chaosDisconnect++
	st.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return
	}
	body := `{"session":"chaos","samples":[{"T":0,"AggTput":100}]}`
	head := fmt.Sprintf("POST /v1/forecast HTTP/1.1\r\nHost: %s\r\n"+
		"Content-Type: application/json\r\nContent-Length: %d\r\n\r\n", addr, len(body))
	conn.Write([]byte(head))
	conn.Write([]byte(body[:len(body)/2]))
	conn.Close()
}
