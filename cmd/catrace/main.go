// Command catrace generates measurement traces and prints or exports them:
// the time-series views of paper Figs 6/7 plus CSV/JSON export for further
// analysis.
//
// Usage:
//
//	catrace -mode fig6|fig7|dataset [-seed N] [-csv out.csv] [-json out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"prism5g/internal/experiments"
	"prism5g/internal/mobility"
	"prism5g/internal/ran"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
)

func main() {
	mode := flag.String("mode", "fig7", "fig6 (aggregate vs sum), fig7 (transition trace) or dataset (ML sub-dataset)")
	seed := flag.Uint64("seed", 42, "run seed")
	csvPath := flag.String("csv", "", "write the trace as CSV to this path")
	jsonPath := flag.String("json", "", "write the dataset as JSON to this path")
	op := flag.String("op", "OpZ", "operator for dataset mode")
	mob := flag.String("mobility", "driving", "walking or driving for dataset mode")
	gran := flag.String("gran", "long", "short (10ms) or long (1s) for dataset mode")
	flag.Parse()

	switch *mode {
	case "fig6":
		res := experiments.Fig6AggregateVsSum(*seed)
		fmt.Printf("n41 alone: %.0f Mbps   n25 alone: %.0f Mbps   sum: %.0f Mbps\n",
			res.AloneA, res.AloneB, res.TheoreticalSum)
		fmt.Printf("n41+n25 aggregate: %.0f Mbps  (mean deficit %.1f%%, max instantaneous %.1f%%)\n",
			res.Aggregate, res.MeanDeficitPct, res.MaxDeficitPct)
		fmt.Println("\naggregate series (Mbps, 1 sample per 100 ms):")
		printSeries(res.SeriesAgg, 10)
	case "fig7":
		res := experiments.Fig7TransitionTrace(*seed)
		fmt.Printf("120 s urban drive: %d CC changes, largest 1 s throughput swing %.1fx\n",
			res.CCChanges, res.MaxStepRatio)
		fmt.Println("\nRRC events:")
		for _, ev := range res.Events {
			fmt.Printf("  %s\n", ev)
		}
		fmt.Println("\naggregate series (Mbps):")
		printSeries(res.Trace.AggSeries(), 10)
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := res.Trace.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			fmt.Println("\nwrote", *csvPath)
		}
	case "dataset":
		g := sim.Long
		if *gran == "short" {
			g = sim.Short
		}
		m := mobility.Driving
		if *mob == "walking" {
			m = mobility.Walking
		}
		spec := sim.SubDatasetSpec{Operator: spectrum.Operator(*op), Mobility: m, Gran: g}
		ds := sim.Build(spec, sim.BuildOpts{Traces: 10, SamplesPerTrace: 450, Seed: *seed, Modem: ran.ModemX70})
		fmt.Printf("built %s: %d traces, %d samples\n", ds.Name, len(ds.Traces), ds.NumSamples())
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := ds.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", *jsonPath)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// printSeries renders a series as a coarse ASCII strip chart, one row per
// group of samples.
func printSeries(series []float64, group int) {
	maxV := 0.0
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i := 0; i < len(series); i += group {
		end := i + group
		if end > len(series) {
			end = len(series)
		}
		avg := 0.0
		for _, v := range series[i:end] {
			avg += v
		}
		avg /= float64(end - i)
		bars := int(40 * avg / maxV)
		fmt.Printf("%6d |%s %.0f\n", i, strings.Repeat("#", bars), avg)
	}
}
