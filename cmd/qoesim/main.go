// Command qoesim runs the paper's QoE use cases: the ViVo XR streamer under
// CA (Figs 8/19) and MPC video-on-demand streaming (Figs 20/21).
//
// Usage:
//
//	qoesim [-use vivo|abr|impact|all] [-quick] [-sessions N] [-seed N]
package main

import (
	"flag"
	"fmt"

	"prism5g/internal/experiments"
)

func main() {
	use := flag.String("use", "all", "vivo (Fig 19), abr (Figs 20/21), impact (Fig 8) or all")
	quick := flag.Bool("quick", true, "use the small configuration")
	sessions := flag.Int("sessions", 12, "streaming sessions for the ABR tails")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	cfg := experiments.PaperMLConfig(*seed)
	if *quick {
		cfg = experiments.QuickMLConfig(*seed)
	}

	if *use == "impact" || *use == "all" {
		fmt.Println("== Fig 8: ViVo QoE, no CA vs 4CC CA (vs each case's ideal) ==")
		res := experiments.Fig8ViVoCAImpact(*seed, 4)
		fmt.Printf("no-CA channel: %.0f±%.0f Mbps    4CC channel: %.0f±%.0f Mbps\n",
			res.NoCAMean, res.NoCAStd, res.FourCCMean, res.FourCCStd)
		fmt.Println("case        run   quality-degradation%   stall-increase%")
		for _, d := range res.NoCA {
			fmt.Printf("no-CA       %3d   %20.1f   %15.1f\n", d.TraceID, d.QualityDegPct, d.StallIncPct)
		}
		for _, d := range res.FourCC {
			fmt.Printf("4CC         %3d   %20.1f   %15.1f\n", d.TraceID, d.QualityDegPct, d.StallIncPct)
		}
	}
	if *use == "vivo" || *use == "all" {
		fmt.Println("\n== Fig 19: ViVo + predictors ==")
		rows := experiments.Fig19ViVoPredictors(cfg)
		fmt.Printf("%-12s %10s %10s %12s %12s\n", "Predictor", "AvgQuality", "Stall(s)", "dQuality(%)", "dStall(s)")
		for _, r := range rows {
			fmt.Printf("%-12s %10.2f %10.2f %12.1f %12.1f\n",
				r.Predictor, r.AvgQuality, r.StallTimeS, r.DeltaQualityPct, r.DeltaStallPct)
		}
	}
	if *use == "abr" || *use == "all" {
		fmt.Println("\n== Figs 20/21: MPC 16K streaming + predictors ==")
		rows := experiments.Fig20ABRPredictors(cfg, *sessions)
		fmt.Print(experiments.FormatABRRows(rows))
	}
}
