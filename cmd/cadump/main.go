// Command cadump surveys the simulated operators and prints the CA
// deployment census: the channel plans, observed CA combinations and
// coverage statistics of paper Tables 1/2/6/7 and Figs 4/25.
//
// Usage:
//
//	cadump [-op OpX|OpY|OpZ|all] [-seed N] [-map]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prism5g/internal/experiments"
	"prism5g/internal/spectrum"
)

func main() {
	opFlag := flag.String("op", "all", "operator to survey (OpX, OpY, OpZ or all)")
	seed := flag.Uint64("seed", 42, "campaign seed")
	showMap := flag.Bool("map", false, "print the urban CA map (Fig 4)")
	flag.Parse()

	ops := spectrum.AllOperators()
	if *opFlag != "all" {
		ops = []spectrum.Operator{spectrum.Operator(*opFlag)}
	}

	fmt.Println("== Channel plans (paper Tables 2(a)/6) ==")
	for _, op := range ops {
		plan := spectrum.PlanFor(op)
		fmt.Printf("\n%s: %d channels across bands %s\n", op, len(plan.Channels), strings.Join(plan.UniqueBands(), " "))
		fmt.Printf("  %-10s %-6s %-10s %-8s %s\n", "Channel", "Mode", "Freq(MHz)", "BW(MHz)", "Class")
		for _, c := range plan.Channels {
			fmt.Printf("  %-10s %-6s %-10.0f %-8.0f %s\n",
				c.ID(), c.Band.Duplex, c.CenterMHz, c.BandwidthMHz, c.Band.Class())
		}
	}

	fmt.Println("\n== Driving census (paper Tables 1/2(b)/7) ==")
	for _, op := range ops {
		res := experiments.Table2ChannelCensus(op, *seed)
		fmt.Printf("\n%s: %.0f km driven over %.0f min\n", op, res.DistanceKM, res.DurationMin)
		fmt.Printf("  4G: %d channels, up to %d CCs, %d/%d combos (ordered/unique)\n",
			res.Channels4G, res.Max4GCCs, res.Ordered4G, res.Unique4G)
		fmt.Printf("  5G: %d channels, up to %d CCs, %d/%d combos, max agg BW %.0f MHz\n",
			res.Channels5G, res.Max5GCCs, res.Ordered5G, res.Unique5G, res.MaxAggBW5GMHz)
		fmt.Println("  top 5G combos:")
		for _, c := range res.TopCombos5G {
			fmt.Printf("    %s\n", c)
		}
	}

	fmt.Println("\n== CA prevalence while driving (paper Figs 25/26) ==")
	fmt.Printf("%-5s %-10s %8s %8s %10s %10s\n", "Op", "Scenario", "5G%", "CA%", "Mean Mbps", "CCchg(s)")
	for _, op := range ops {
		for _, row := range experiments.Fig25DrivingPrevalence(op, *seed) {
			fmt.Printf("%-5s %-10s %7.0f%% %7.0f%% %10.0f %10.1f\n",
				row.Operator, row.Scenario, 100*row.NRFraction, 100*row.CAFraction,
				row.MeanMbps, row.EventPeriodS)
		}
	}

	if *showMap {
		fmt.Println("\n== Urban CA map, 100 m grid (paper Fig 4) ==")
		cells := experiments.Fig4UrbanCAMap(ops[0], *seed)
		for _, c := range cells {
			bar := strings.Repeat("#", int(c.MeanCCs*2+0.5))
			fmt.Printf("  (%3d,%3d) meanCCs=%.1f %s\n", c.X, c.Y, c.MeanCCs, bar)
		}
	}
	os.Exit(0)
}
