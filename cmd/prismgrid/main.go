// Command prismgrid runs a declarative scenario grid: a JSON config
// enumerates axis values (operator, mobility, granularity, band combo,
// fault severity, predictor, QoE app, link direction, seed × repeats) and
// the runner expands the cross-product, executes the cells on the
// deterministic worker pool and writes one JSON result per cell plus a
// grouped summary (summary.json / summary.csv) into the output directory.
//
// Usage:
//
//	prismgrid -config grid.json [-out dir] [-workers N] [-abort-after N]
//	          [-metrics file] [-journal file] [-pprof addr]
//
// Runs resume: a manifest records the config hash and a checksum per
// completed cell, so re-invoking prismgrid on the same directory recomputes
// only missing or invalid cells, and the merged output is byte-identical to
// an uninterrupted run. -abort-after deterministically stops the run after
// N computed cells (exit code 3) — the hook the CI smoke test uses to
// exercise resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"prism5g/internal/grid"
	"prism5g/internal/obs"
)

func main() {
	configPath := flag.String("config", "", "grid config JSON (required)")
	out := flag.String("out", "gridrun", "output directory (created if missing)")
	workers := flag.Int("workers", 0, "worker pool size: 0 = config setting (default one per CPU); cell bytes are identical at any setting")
	abortAfter := flag.Int("abort-after", 0, "abort after N computed cells (0 = run to completion); the resume smoke-test hook")
	teleFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	tele, err := teleFlags.Start()
	if err != nil {
		log.Fatalf("prismgrid: %v", err)
	}
	if addr := tele.PprofAddr(); addr != "" {
		fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
	}

	if *configPath == "" {
		log.Fatal("prismgrid: -config is required")
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		log.Fatalf("prismgrid: %v", err)
	}
	cfg, err := grid.Parse(data)
	if err != nil {
		log.Fatalf("prismgrid: %v", err)
	}

	rep, err := grid.Run(context.Background(), cfg, *out, grid.RunOpts{
		Workers: *workers, AbortAfterCells: *abortAfter,
	})
	if errors.Is(err, grid.ErrAborted) {
		fmt.Printf("%s (aborted after %d computed cells; rerun to resume)\n",
			rep.SummaryLine(), rep.Computed)
		closeTele(tele)
		os.Exit(3)
	}
	if err != nil {
		log.Fatalf("prismgrid: %v", err)
	}
	fmt.Println(rep.SummaryLine())
	for _, row := range rep.Summary {
		switch {
		case row.App == grid.AppPredict:
			fmt.Printf("  %-60s rmse=%.4f ±%.4f (n=%d)\n", row.Group, row.RMSEMean, row.RMSEStd, row.Cells)
		default:
			fmt.Printf("  %-60s quality=%.2f stall=%.2fs miss=%.3f (n=%d)\n",
				row.Group, row.QualityMean, row.StallMean, row.MissMean, row.Cells)
		}
	}
	closeTele(tele)
}

// closeTele flushes telemetry and prints its summary when enabled.
func closeTele(tele *obs.CLI) {
	if !tele.Active() {
		return
	}
	if s := tele.Summary(); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if err := tele.Close(); err != nil {
		log.Printf("prismgrid: telemetry: %v", err)
	}
}
