GO ?= go

.PHONY: build vet test test-race fuzz-smoke bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzz pass over the trace ingest path; CI-sized.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReadJSON -fuzztime=20s ./internal/trace/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

check: build vet test test-race fuzz-smoke
