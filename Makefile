GO ?= go

.PHONY: build vet test test-race fuzz-smoke bench bench-json alloc-gate obs-smoke serve-smoke pop-smoke grid-smoke conform golden cover check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzz passes over the trace ingest paths; CI-sized.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReadJSON -fuzztime=20s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzReadCSV -fuzztime=20s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzGridConfig -fuzztime=20s ./internal/grid/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Headline benchmarks (parallel build, Table 4 fan-out, training loop,
# window extraction, ingest repair) rendered as BENCH_obs.json for machine
# comparison. BENCHTIME/COUNT env vars control stability vs speed.
bench-json:
	./scripts/benchjson.sh

# Allocation-regression gate: re-measure the two hot-path benchmarks and
# fail if allocs/op regressed >20% against the checked-in BENCH_obs.json.
alloc-gate:
	./scripts/allocgate.sh

# Telemetry smoke: a quick instrumented run must produce a parseable
# metrics snapshot covering the sim, par, trace and train stages; then a
# live prismserve must trace every request (X-Prism-Trace), expose a
# valid OpenMetrics /metrics with trace-ID exemplars, and its journal
# must answer prismobs blame/slo.
obs-smoke:
	$(GO) run ./cmd/prismeval -quick -runtime -metrics obs_metrics.json -journal obs_journal.jsonl
	./scripts/obssmoke.sh obs_metrics.json

# End-to-end serving smoke: prismserve under a deliberately undersized
# queue must shed with 429s (never drop a request), survive one seeded
# chaos pass (slow-loris, malformed payloads, disconnects, bursts) and
# drain cleanly on SIGTERM.
serve-smoke:
	./scripts/servesmoke.sh

# Population-mode smoke: a jsonl-spilled build must emit one trace per
# UE, be byte-identical at any worker count, and the prismeval
# -population streaming pipeline must run end to end.
pop-smoke:
	./scripts/popsmoke.sh

# Scenario-grid smoke: a tiny 2x2 grid runs, is interrupted with the
# deterministic abort hook, resumes, and the merged output must be
# byte-identical to an uninterrupted run (and to a -workers 4 run).
grid-smoke:
	./scripts/gridsmoke.sh

# Paper-conformance suite: goldens + statistical invariants + metamorphic
# laws. Exits nonzero on any violation.
conform:
	$(GO) run ./cmd/prismconform

# Regenerate the committed golden fixtures (run after an intentional
# simulator or experiment change, then review the diff).
golden:
	$(GO) test ./internal/conform/ -run TestGoldens -update
	$(GO) test ./internal/conform/

# Coverage with per-package summary and a soft gate on the packages the
# conformance harness leans on. coverage.out / coverage.txt are the CI
# artifacts.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./... | tee coverage.txt
	./scripts/covergate.sh coverage.txt

check: build vet test test-race fuzz-smoke conform
