// Robustness facade: degraded-data generation, validation/repair and
// crash-contained training. Real measurement campaigns are not clean — the
// paper's XCAL logs carry radio link failures, activation failures, NaN
// sensor reads and logging dropouts — so the pipeline must survive all of
// them end to end. See DESIGN.md, "Fault model and resilience".
package prism5g

import (
	"prism5g/internal/faults"
	"prism5g/internal/predictors"
	"prism5g/internal/sim"
	"prism5g/internal/trace"
)

// Re-exported fault-layer and repair types.
type (
	// FaultPlan composes the fault injectors applied to generated traces.
	FaultPlan = faults.FaultPlan
	// FaultReport counts what a plan injected.
	FaultReport = faults.Report
	// ValidationReport lists the typed findings of a validation pass.
	ValidationReport = trace.ValidationReport
	// ValidationError is one typed validation finding.
	ValidationError = trace.ValidationError
	// RepairOpts configures dataset repair (imputation policy, gap fill).
	RepairOpts = trace.RepairOpts
	// RepairReport counts what a repair pass fixed.
	RepairReport = trace.RepairReport
	// TrainReport summarizes a training run, including divergence
	// retries and fallback demotion.
	TrainReport = predictors.TrainReport
)

// FaultPlanAtSeverity maps a severity in [0, 1] to a full fault plan; 0
// disables every injector, 1 is a heavily degraded campaign.
func FaultPlanAtSeverity(severity float64) FaultPlan {
	return faults.PlanAtSeverity(severity)
}

// GenerateFaultyDataset is GenerateDataset degraded by a fault plan: radio
// link failures, PCell-switch and SCell-activation failures, stuck and NaN
// sensor fields, timestamp jitter and measurement dropouts. The same seed
// with a nil plan yields the identical campaign, clean — so clean and
// degraded results are directly comparable.
func GenerateFaultyDataset(op Operator, mob Mobility, gran Granularity, seed uint64, plan *FaultPlan) (*Dataset, FaultReport) {
	opts := sim.DefaultBuildOpts(seed)
	opts.Faults = plan
	return sim.BuildReport(sim.SubDatasetSpec{Operator: op, Mobility: mob, Gran: gran}, opts)
}

// RepairDataset validates ds and repairs what it finds in place with the
// default hold-last policy: non-finite fields imputed, timestamps
// re-monotonized, CA masks reconciled, logging gaps refilled. The
// ValidationReport describes the data as it arrived, the RepairReport what
// was fixed.
func RepairDataset(ds *Dataset) (*ValidationReport, RepairReport) {
	return ds.ValidateAndRepair(trace.DefaultRepairOpts())
}

// RobustResult is TrainRobust's outcome: the guarded predictor plus the
// resilience counters the acceptance pipeline reports.
type RobustResult struct {
	// Predictor is the crash-contained predictor; use it in place of the
	// wrapped one.
	Predictor Predictor
	// Report is the training summary (Retries counts divergence
	// recoveries, Fallback flags demotion).
	Report TrainReport
	// SkippedWindows counts training/validation windows rejected for
	// non-finite inputs or targets.
	SkippedWindows int
	// Demoted reports that a training crash demoted the predictor to the
	// harmonic-mean fallback.
	Demoted bool
}

// TrainRobust trains p inside a crash-contained wrapper: windows with
// non-finite values are skipped, training divergence rolls back and
// retries at a backed-off learning rate (see TrainReport.Retries), and a
// panic demotes to the harmonic-mean fallback instead of killing the run.
// The returned predictor also sanitizes its own forecasts, so downstream
// QoE consumers never see NaN bandwidth estimates.
func TrainRobust(p Predictor, b *Bundle) RobustResult {
	horizon := trace.DefaultWindowOpts().Horizon
	r := predictors.NewResilient(p, horizon)
	train, skippedTrain := predictors.FilterValid(b.Train)
	val, skippedVal := predictors.FilterValid(b.Val)
	rep := r.Train(train, val)
	return RobustResult{
		Predictor:      r,
		Report:         rep,
		SkippedWindows: skippedTrain + skippedVal,
		Demoted:        r.Demoted(),
	}
}
