// Package prism5g reproduces "Dissecting Carrier Aggregation in 5G
// Networks: Measurement, QoE Implications and Prediction" (ACM SIGCOMM
// 2024) as a self-contained Go library.
//
// It bundles three layers:
//
//   - A measurement substrate: a 4G/5G radio-access-network simulator with
//     carrier aggregation (3GPP band catalog, PHY tables, RRC CA engine,
//     scheduler, mobility and propagation models) that generates the
//     per-component-carrier traces the paper collects with XCAL on
//     commercial networks.
//   - The Prism5G CA-aware throughput predictor and all the paper's
//     baselines (Prophet, LSTM, TCN, Lumos5G/Seq2Seq, GBDT, RF), built on a
//     from-scratch neural-network stack.
//   - The two QoE applications of the paper's use cases: a ViVo-style XR
//     streamer and an MPC adaptive-bitrate video player.
//
// This file is the facade: the few calls most users need. The full
// machinery lives in the internal packages (see DESIGN.md for the map).
//
// Quickstart:
//
//	ds := prism5g.GenerateDataset(prism5g.OpZ, prism5g.Driving, prism5g.Short, 42)
//	bundle := prism5g.Prepare(ds, 1)
//	model := prism5g.NewPrism5G(bundle, prism5g.ModelConfig{})
//	model.Train(bundle.Train, bundle.Val)
//	rmse := prism5g.EvaluateRMSE(model, bundle.Test)
package prism5g

import (
	"fmt"
	"strings"

	"prism5g/internal/core"
	"prism5g/internal/ml"
	"prism5g/internal/mobility"
	"prism5g/internal/predictors"
	"prism5g/internal/qoe"
	"prism5g/internal/ran"
	"prism5g/internal/rng"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
	"prism5g/internal/trace"
)

// Re-exported identifiers so downstream code can stay on the facade.
type (
	// Dataset is a set of measurement traces.
	Dataset = trace.Dataset
	// Trace is one measurement run.
	Trace = trace.Trace
	// Window is one supervised learning example.
	Window = trace.Window
	// Scaler is the min-max feature scaler.
	Scaler = trace.Scaler
	// Predictor is any throughput predictor.
	Predictor = predictors.Predictor
	// Operator identifies a mobile operator.
	Operator = spectrum.Operator
	// Mobility is the UE movement pattern.
	Mobility = mobility.Mobility
	// Granularity is the dataset time scale.
	Granularity = sim.Granularity
	// ViVoResult is an XR streaming QoE outcome.
	ViVoResult = qoe.ViVoResult
	// ABRResult is a video-streaming QoE outcome.
	ABRResult = qoe.ABRResult
)

// Re-exported constants.
const (
	// OpX, OpY, OpZ are the three anonymized US operators.
	OpX = spectrum.OpX
	OpY = spectrum.OpY
	OpZ = spectrum.OpZ
	// Stationary, Walking, Driving are the mobility patterns.
	Stationary = mobility.Stationary
	Walking    = mobility.Walking
	Driving    = mobility.Driving
	// Short (10 ms) and Long (1 s) are the dataset granularities.
	Short = sim.Short
	Long  = sim.Long
)

// GenerateDataset builds one of the paper's six ML sub-datasets (Table 11)
// for the operator and mobility at the given granularity, deterministically
// from seed.
func GenerateDataset(op Operator, mob Mobility, gran Granularity, seed uint64) *Dataset {
	return sim.Build(
		sim.SubDatasetSpec{Operator: op, Mobility: mob, Gran: gran},
		sim.DefaultBuildOpts(seed),
	)
}

// GenerateDatasetSized is GenerateDataset with explicit scale — trace count
// and samples per trace — for demos and CI smoke runs that cannot afford
// the paper-sized default (10 traces x 450 samples).
func GenerateDatasetSized(op Operator, mob Mobility, gran Granularity, seed uint64, traces, samplesPerTrace int) *Dataset {
	opts := sim.DefaultBuildOpts(seed)
	opts.Traces = traces
	opts.SamplesPerTrace = samplesPerTrace
	return sim.Build(
		sim.SubDatasetSpec{Operator: op, Mobility: mob, Gran: gran},
		opts,
	)
}

// Bundle is a prepared learning problem: scaled windows split into
// train/validation/test (0.5/0.2/0.3, the paper's ratios) plus the scaler
// for inverting predictions to Mbps.
type Bundle struct {
	Dataset          *Dataset
	Scaler           *Scaler
	Train, Val, Test []Window
}

// Prepare fits the scaler, extracts dense windows (history 10, horizon 10)
// and splits them with the paper's ratios.
func Prepare(ds *Dataset, seed uint64) *Bundle {
	sc := &Scaler{}
	sc.Fit(ds.Traces)
	ws := trace.Windows(ds, sc, trace.DefaultWindowOpts())
	train, val, test := trace.Split(ws, 0.5, 0.2, rng.New(seed))
	return &Bundle{Dataset: ds, Scaler: sc, Train: train, Val: val, Test: test}
}

// ModelConfig tunes model construction; the zero value uses the defaults
// from the paper's setup at a tractable width.
type ModelConfig struct {
	// Hidden is the network width (default 32).
	Hidden int
	// Epochs caps training (default 200 with early stopping).
	Epochs int
	// Seed drives initialization and shuffling.
	Seed uint64
}

func (c ModelConfig) fill() (int, predictors.TrainOpts) {
	hidden := c.Hidden
	if hidden == 0 {
		hidden = 32
	}
	t := predictors.DefaultTrainOpts()
	if c.Epochs != 0 {
		t.Epochs = c.Epochs
	}
	if c.Seed != 0 {
		t.Seed = c.Seed
	}
	return hidden, t
}

// NewPrism5G builds the paper's CA-aware predictor.
func NewPrism5G(b *Bundle, cfg ModelConfig) Predictor {
	hidden, topts := cfg.fill()
	opts := core.DefaultOptions()
	opts.Hidden = hidden
	opts.Train = topts
	return core.New(opts, trace.DefaultWindowOpts().History)
}

// NewBaseline builds one of the paper's baselines by name: "Prophet",
// "LSTM", "TCN", "Lumos5G", "GBDT", "RF" or "HarmonicMean". Unknown names
// return nil; use NewBaselineE to get the error instead of a nil that
// detonates at first use.
func NewBaseline(name string, b *Bundle, cfg ModelConfig) Predictor {
	p, err := NewBaselineE(name, b, cfg)
	if err != nil {
		return nil
	}
	return p
}

// NewBaselineE is NewBaseline with an explicit error for unknown names.
func NewBaselineE(name string, b *Bundle, cfg ModelConfig) (Predictor, error) {
	hidden, topts := cfg.fill()
	horizon := trace.DefaultWindowOpts().Horizon
	switch name {
	case "Prophet":
		return predictors.NewProphetPredictor(b.Dataset, ml.DefaultProphetOpts()), nil
	case "LSTM":
		return predictors.NewLSTMPredictor(hidden, horizon, topts), nil
	case "TCN":
		return predictors.NewTCNPredictor(hidden, horizon, topts), nil
	case "Lumos5G":
		return predictors.NewLumos5G(hidden, horizon, topts), nil
	case "GBDT":
		return predictors.NewTreePredictor(predictors.KindGBDT, horizon, topts.Seed), nil
	case "RF":
		return predictors.NewTreePredictor(predictors.KindRF, horizon, topts.Seed), nil
	case "HarmonicMean":
		return &predictors.HarmonicMean{Horizon: horizon}, nil
	default:
		return nil, fmt.Errorf("prism5g: unknown baseline %q (known: %s)",
			name, strings.Join(append(BaselineNames(), "HarmonicMean"), ", "))
	}
}

// BaselineNames lists the supported baseline names in the paper's order.
func BaselineNames() []string {
	return []string{"Prophet", "LSTM", "TCN", "Lumos5G", "GBDT", "RF"}
}

// EvaluateRMSE computes the pooled horizon RMSE (scaled units, the Table 4
// metric) of a predictor over windows.
func EvaluateRMSE(p Predictor, ws []Window) float64 {
	return predictors.Evaluate(p, ws)
}

// SimulateViVo streams the ViVo XR application over a trace with a trained
// predictor ("" or "MovingMean" for stock ViVo, "Ideal" for the oracle).
func SimulateViVo(tr *Trace, sc *Scaler, p Predictor, scaledUp bool) ViVoResult {
	ch := qoe.NewChannel(tr)
	cfg := qoe.DefaultViVoConfig()
	if scaledUp {
		cfg = qoe.ScaledUpViVoConfig()
	}
	var bw qoe.BandwidthPredictor
	switch {
	case p == nil:
		bw = &qoe.MovingMean{K: 10}
	default:
		bw = qoe.NewModelPredictor(p.Name(), p, tr, sc, trace.DefaultWindowOpts())
	}
	return qoe.RunViVo(cfg, ch, bw)
}

// SimulateABR streams the MPC video player over a trace with a trained
// predictor (nil for MPC's stock harmonic-mean estimator).
func SimulateABR(tr *Trace, sc *Scaler, p Predictor) ABRResult {
	ch := qoe.NewChannel(tr)
	cfg := qoe.DefaultABRConfig()
	var bw qoe.BandwidthPredictor
	switch {
	case p == nil:
		bw = &qoe.HarmonicPredictor{K: 5}
	default:
		bw = qoe.NewModelPredictor(p.Name(), p, tr, sc, trace.DefaultWindowOpts())
	}
	return qoe.RunABR(cfg, ch, bw)
}

// UEModems lists the supported handset modem generations (paper Table 5).
func UEModems() []string {
	var out []string
	for _, m := range ran.AllModems() {
		out = append(out, m.String())
	}
	return out
}
