// Benchmark harness, part 1: the measurement tables and figures. Every
// bench regenerates its table/figure rows (printed once per run) so the
// full suite doubles as the reproduction harness:
//
//	go test -bench=. -benchmem
//
// Benches default to reduced-but-faithful configurations; set the
// environment variable PRISM5G_PAPER=1 to run the learning benches at the
// paper's full dataset scale (much slower). The ML and QoE benches live in
// experiments_bench_test.go.
package prism5g_test

import (
	"fmt"
	"sync"
	"testing"

	"prism5g/internal/experiments"
	"prism5g/internal/mobility"
	"prism5g/internal/ran"
	"prism5g/internal/sim"
	"prism5g/internal/spectrum"
)

// once guards the row printing so repeated b.N iterations stay quiet.
var printOnce sync.Map

func printRows(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n--- %s ---\n%s", key, text)
	}
}

func BenchmarkFig1_IdealThroughputByCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, op := range spectrum.AllOperators() {
			for _, tech := range []spectrum.Tech{spectrum.LTE, spectrum.NR} {
				for _, r := range experiments.Fig1IdealThroughputByCC(op, tech, 42) {
					out += fmt.Sprintf("%-4s %-3s %dCC %-42s BW=%3.0fMHz mean=%5.0f peak=%5.0f\n",
						r.Operator, r.Tech, r.NumCCs, r.Combo, r.AggBWMHz, r.MeanMbps, r.PeakMbps)
				}
			}
		}
		printRows("Fig 1/23: ideal throughput by CC count", out)
	}
}

func BenchmarkFig2_ThroughputMultimodality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, tech := range []spectrum.Tech{spectrum.LTE, spectrum.NR} {
			r := experiments.Fig2Multimodality(spectrum.OpZ, tech, 7)
			out += fmt.Sprintf("%s driving: mean=%.0f std=%.0f peak=%.0f modes=%.0f\n",
				r.Tech, r.Mean, r.Std, r.PeakMbps, r.Modes)
		}
		printRows("Fig 2/24: throughput multimodality", out)
	}
}

func BenchmarkTable1_CampaignStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, op := range spectrum.AllOperators() {
			r := experiments.Table2ChannelCensus(op, 42)
			out += fmt.Sprintf("%s: %.0f km / %.0f min, 4G %d ch %d/%d combos, 5G %d ch %d/%d combos\n",
				r.Operator, r.DistanceKM, r.DurationMin,
				r.Channels4G, r.Ordered4G, r.Unique4G,
				r.Channels5G, r.Ordered5G, r.Unique5G)
		}
		printRows("Table 1: campaign statistics", out)
	}
}

func BenchmarkTable2_ChannelsAndCombos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, op := range spectrum.AllOperators() {
			r := experiments.Table2ChannelCensus(op, 43)
			out += fmt.Sprintf("%s: 5G up to %d CCs, max agg BW %.0f MHz, top combos %v\n",
				r.Operator, r.Max5GCCs, r.MaxAggBW5GMHz, r.TopCombos5G)
		}
		printRows("Table 2(b)/7: CA combinations", out)
	}
}

func BenchmarkFig4_UrbanCAMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig4UrbanCAMap(spectrum.OpZ, 13)
		out := fmt.Sprintf("%d grid cells covered; sample row:\n", len(cells))
		for j, c := range cells {
			if j >= 8 {
				break
			}
			out += fmt.Sprintf("  (%d,%d) meanCCs=%.1f n=%d\n", c.X, c.Y, c.MeanCCs, c.Samples)
		}
		printRows("Fig 4: urban CA map", out)
	}
}

func BenchmarkFig5_ComboViolins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig5ComboViolins(15) {
			out += fmt.Sprintf("%-4s %-32s BW=%3.0fMHz %s\n", r.Operator, r.Combo, r.AggBWMHz, r.Summary)
		}
		printRows("Fig 5: CA combo throughput distributions", out)
	}
}

func BenchmarkFig6_AggregateVsSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6AggregateVsSum(17)
		printRows("Fig 6: aggregate vs sum of parts", fmt.Sprintf(
			"n41 alone %.0f + n25 alone %.0f = %.0f theoretical; aggregate %.0f (mean deficit %.1f%%, max %.1f%%)\n",
			r.AloneA, r.AloneB, r.TheoreticalSum, r.Aggregate, r.MeanDeficitPct, r.MaxDeficitPct))
	}
}

func BenchmarkFig7_TransitionTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7TransitionTrace(19)
		printRows("Fig 7: CC transitions while driving", fmt.Sprintf(
			"120 s drive: %d CC changes, %d RRC events, max 1 s throughput swing %.1fx\n",
			r.CCChanges, len(r.Events), r.MaxStepRatio))
	}
}

func BenchmarkFig9_TBSMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9TBSMapping()
		out := ""
		for _, r := range rows {
			if r.Symbols == 13 {
				out += fmt.Sprintf("MCS %2d, 13 symbols: TBS %d bits\n", r.MCS, r.TBSBits)
			}
		}
		printRows("Fig 9: TBS vs MCS mapping", out)
	}
}

func BenchmarkFig10_SpectralEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig10SpectralEfficiency() {
			out += fmt.Sprintf("%-26s %6.0f Mbps over %3.0f MHz = %5.2f bits/s/Hz\n",
				r.Channel, r.CapMbps, r.BWMHz, r.BitsPerHz)
		}
		printRows("Fig 10: spectral efficiency", out)
	}
}

func BenchmarkFig11to13_RSRPCorrelations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig11to13Correlations(21) {
			out += fmt.Sprintf("%-5s %-14s own:%.2f/%.2f cross:%.2f/%.2f rsrp-rsrp:%.2f\n",
				r.Kind, r.Combo,
				r.PCellRSRPvsPCellTput, r.SCellRSRPvsSCellTput,
				r.PCellRSRPvsSCellTput, r.SCellRSRPvsPCellTput,
				r.PCellRSRPvsSCellRSRP)
		}
		printRows("Figs 11-13: intra vs inter-band correlations", out)
	}
}

func BenchmarkFig14_MIMOReductionUnderCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig14MIMOReduction(23) {
			out += fmt.Sprintf("%-18s RSRP=%.1f CQI=%.1f MIMO=%.1f #RB=%.1f ccTput=%.0f total=%.0f\n",
				r.Scenario, r.RSRPdBm, r.CQI, r.Layers, r.RB, r.CCTput, r.TotalTput)
		}
		printRows("Fig 14: same channel with/without CA", out)
	}
}

func BenchmarkFig15_RBThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig15RBThrottling(25) {
			out += fmt.Sprintf("%-18s n41^b: #RB=%.1f layers=%.1f ccTput=%.0f\n",
				r.Scenario, r.RB, r.Layers, r.CCTput)
		}
		printRows("Fig 15: same SCell under different combos", out)
	}
}

func BenchmarkFig25_26_DrivingPrevalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, op := range spectrum.AllOperators() {
			for _, r := range experiments.Fig25DrivingPrevalence(op, 27) {
				out += fmt.Sprintf("%-4s %-9s 5G %3.0f%% CA %3.0f%% mean %4.0f Mbps, CC change every %.0fs\n",
					r.Operator, r.Scenario, 100*r.NRFraction, 100*r.CAFraction, r.MeanMbps, r.EventPeriodS)
			}
		}
		printRows("Figs 25/26: driving prevalence and throughput", out)
	}
}

func BenchmarkFig27_28_IndoorCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig27IndoorCoverage(29)
		printRows("Figs 27/28: indoor FDD-TDD CA coverage", fmt.Sprintf(
			"with n71: 5G %.0f%% CA %.0f%% mean %.0f Mbps | without: 5G %.0f%% CA %.0f%% mean %.0f Mbps | RSRP n71 %.1f vs n41 %.1f dBm\n",
			100*r.WithLowBand.NRFraction, 100*r.WithLowBand.CAFraction, r.WithLowBand.MeanMbps,
			100*r.WithoutLowBand.NRFraction, 100*r.WithoutLowBand.CAFraction, r.WithoutLowBand.MeanMbps,
			r.LowBandRSRP, r.MidBandRSRP))
	}
}

func BenchmarkFig29_UECapability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig29UECapability(31) {
			out += fmt.Sprintf("%-4s (%-9s) maxCC=%d CA%%=%3.0f mean=%4.0f Mbps\n",
				r.Modem, r.Phone, r.MaxCCs, 100*r.CAFrac, r.MeanMbps)
		}
		printRows("Fig 29: UE capability", out)
	}
}

func BenchmarkTable5_UEModems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Fig29UECapability(31) {
			out += fmt.Sprintf("modem %s = %s\n", r.Modem, r.Phone)
		}
		printRows("Table 5: UE and modem models", out)
	}
}

func BenchmarkTable8_TemporalSignal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, r := range experiments.Table8TemporalDynamics(33) {
			out += fmt.Sprintf("%-11s RB=%.1f CQI=%.1f MCS=%.1f perCC=%v\n",
				r.Label, r.MeanRB, r.MeanCQI, r.MeanMCS, r.PerCC)
		}
		printRows("Tables 8/9/10: temporal dynamics", out)
	}
}

func BenchmarkTable9_10_RushHourLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8TemporalDynamics(35)
		var rush, night experiments.TemporalRow
		for _, r := range rows {
			switch r.Label {
			case "T1 rush":
				rush = r
			case "T2 night":
				night = r
			}
		}
		printRows("Tables 9/10: rush hour shrinks RBs, CQI stable", fmt.Sprintf(
			"rush: RB=%.1f CQI=%.1f | night: RB=%.1f CQI=%.1f\n",
			rush.MeanRB, rush.MeanCQI, night.MeanRB, night.MeanCQI))
	}
}

// BenchmarkParallelBuild measures the deterministic worker-pool speedup on
// dataset generation: same seed, same bytes, different worker counts.
func BenchmarkParallelBuild(b *testing.B) {
	spec := sim.SubDatasetSpec{Operator: spectrum.OpZ, Mobility: mobility.Driving, Gran: sim.Long}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.Build(spec, sim.BuildOpts{
					Traces: 8, SamplesPerTrace: 400, Seed: 42,
					Modem: ran.ModemX70, Workers: workers,
				})
			}
			// Simulated traces generated per second — a tracked headline
			// number alongside windows/s (see BENCH_obs.json).
			b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "traces/s")
		})
	}
}

// BenchmarkParallelTable4 measures the pool across the full experiment
// fan-out: sub-dataset builds and model training at 1 vs 4 workers.
func BenchmarkParallelTable4(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.MLConfig{
					Traces: 4, SamplesPerTrace: 200, Stride: 2,
					Hidden: 16, Epochs: 15, Patience: 5, Seed: 42,
					Models:  []string{"LSTM", "TCN", "Prism5G"},
					Workers: workers,
				}
				experiments.Table4(sim.Long, cfg)
			}
		})
	}
}
