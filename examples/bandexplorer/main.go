// Band explorer: poke at the 5G PHY underneath the simulator.
//
// Prints the 3GPP band catalog, per-channel theoretical capacity and
// spectral efficiency (paper Fig 10), the TBS/MCS mapping (paper Fig 9) and
// the ideal-condition CA scaling of paper Fig 1.
//
// Run with:
//
//	go run ./examples/bandexplorer
package main

import (
	"fmt"

	"prism5g/internal/experiments"
	"prism5g/internal/phy"
	"prism5g/internal/spectrum"
)

func main() {
	fmt.Println("== 3GPP band catalog (paper Table 6) ==")
	fmt.Printf("%-6s %-4s %-5s %-10s %-9s %s\n", "Band", "Tech", "Mode", "Freq(MHz)", "Class", "Bandwidths(MHz)")
	for _, b := range spectrum.AllBands() {
		fmt.Printf("%-6s %-4s %-5s %-10.0f %-9s %v\n",
			b.Name, b.Tech, b.Duplex, b.FreqMHz, b.Class(), b.BandwidthsMHz)
	}

	fmt.Println("\n== Channel capacity & spectral efficiency (paper Fig 10) ==")
	fmt.Printf("%-26s %10s %12s %10s\n", "Channel", "BW(MHz)", "Cap(Mbps)", "bits/s/Hz")
	for _, r := range experiments.Fig10SpectralEfficiency() {
		fmt.Printf("%-26s %10.0f %12.0f %10.2f\n", r.Channel, r.BWMHz, r.CapMbps, r.BitsPerHz)
	}

	fmt.Println("\n== TBS vs MCS vs symbols, 100 MHz @ 2 layers (paper Fig 9) ==")
	fmt.Printf("%-5s", "MCS")
	for sym := 2; sym <= 13; sym++ {
		fmt.Printf("%9d", sym)
	}
	fmt.Println()
	rows := experiments.Fig9TBSMapping()
	lastMCS := -1
	for _, r := range rows {
		if r.MCS != lastMCS {
			if lastMCS >= 0 {
				fmt.Println()
			}
			fmt.Printf("%-5d", r.MCS)
			lastMCS = r.MCS
		}
		fmt.Printf("%9d", r.TBSBits)
	}
	fmt.Println()

	fmt.Println("\n== Ideal-condition CA scaling (paper Fig 1), OpZ 5G ==")
	fmt.Printf("%-40s %8s %10s %10s\n", "Combo", "BW(MHz)", "Mean Mbps", "Peak Mbps")
	for _, r := range experiments.Fig1IdealThroughputByCC(spectrum.OpZ, spectrum.NR, 42) {
		fmt.Printf("%-40s %8.0f %10.0f %10.0f\n", r.Combo, r.AggBWMHz, r.MeanMbps, r.PeakMbps)
	}

	// A few raw PHY calls for orientation.
	top := phy.MCSTable256QAM[len(phy.MCSTable256QAM)-1]
	nRB, _ := phy.NumRB(true, 30, 100)
	fmt.Printf("\nraw PHY: 100 MHz @30 kHz SCS has %d RBs; one full slot at top MCS, 4 layers carries %d bits\n",
		nRB, phy.SlotCapacityBits(nRB, 13, top, 4))
}
