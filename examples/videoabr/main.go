// 16K video-on-demand over 5G CA: the paper's MPC ABR use case.
//
// Streams the paper's bitrate ladder ([1.5 ... 585] Mbps, up to 16K) over
// simulated CA traces with the stock harmonic-mean MPC estimator and with a
// Prism5G forecast, and reports average bitrate and stall time.
//
// Run with:
//
//	go run ./examples/videoabr
package main

import (
	"fmt"

	"prism5g"
)

func main() {
	fmt.Println("generating 1 s CA traces (OpZ, driving) ...")
	ds := prism5g.GenerateDataset(prism5g.OpZ, prism5g.Driving, prism5g.Long, 21)
	bundle := prism5g.Prepare(ds, 1)

	fmt.Println("training Prism5G ...")
	prism := prism5g.NewPrism5G(bundle, prism5g.ModelConfig{Hidden: 16, Epochs: 20, Seed: 1})
	prism.Train(bundle.Train, bundle.Val)

	// Stream sessions over the held-out tail traces.
	var hmStall, prStall, hmRate, prRate float64
	sessions := 0
	for ti := len(ds.Traces) - 3; ti < len(ds.Traces); ti++ {
		tr := &ds.Traces[ti]
		hm := prism5g.SimulateABR(tr, bundle.Scaler, nil)
		pr := prism5g.SimulateABR(tr, bundle.Scaler, prism)
		fmt.Printf("\nsession %d (%s):\n", sessions+1, tr.Meta.Scenario)
		fmt.Printf("  MPC + harmonic mean: %s\n", hm)
		fmt.Printf("  MPC + Prism5G:       %s\n", pr)
		hmStall += hm.StallTimeS
		prStall += pr.StallTimeS
		hmRate += hm.AvgMbps
		prRate += pr.AvgMbps
		sessions++
	}
	n := float64(sessions)
	fmt.Printf("\naverages over %d sessions:\n", sessions)
	fmt.Printf("  harmonic mean: %.0f Mbps, %.1f s stalled\n", hmRate/n, hmStall/n)
	fmt.Printf("  Prism5G:       %.0f Mbps, %.1f s stalled\n", prRate/n, prStall/n)
	if prStall < hmStall {
		fmt.Printf("  -> Prism5G cut stall time by %.0f%%\n", 100*(1-prStall/hmStall))
	}
}
