// XR streaming over 5G carrier aggregation: the paper's ViVo use case.
//
// This example streams a volumetric-video session over a simulated 4CC CA
// driving trace three ways — with ViVo's stock moving-average bandwidth
// estimator, with a trained Prism5G predictor, and with a clairvoyant
// oracle — and compares the QoE (quality level and stall time).
//
// Run with:
//
//	go run ./examples/xrstreaming
package main

import (
	"fmt"

	"prism5g"
)

func main() {
	// Build a short-granularity (10 ms) dataset: ViVo makes frame-by-frame
	// decisions every 150 ms, so it needs the fast predictor.
	fmt.Println("generating 10 ms CA traces (OpZ, driving) ...")
	ds := prism5g.GenerateDataset(prism5g.OpZ, prism5g.Driving, prism5g.Short, 7)
	bundle := prism5g.Prepare(ds, 1)

	fmt.Println("training Prism5G ...")
	prism := prism5g.NewPrism5G(bundle, prism5g.ModelConfig{Hidden: 16, Epochs: 20, Seed: 1})
	prism.Train(bundle.Train, bundle.Val)

	// Stream over the last trace of the dataset.
	tr := &ds.Traces[len(ds.Traces)-1]
	mean := 0.0
	for _, s := range tr.Samples {
		mean += s.AggTput / float64(len(tr.Samples))
	}
	fmt.Printf("\nstreaming over a %d-sample trace (mean %.0f Mbps, scaled-up ViVo ladder up to 750 Mbps)\n",
		len(tr.Samples), mean)

	stock := prism5g.SimulateViVo(tr, bundle.Scaler, nil, true)
	smart := prism5g.SimulateViVo(tr, bundle.Scaler, prism, true)

	fmt.Printf("\n%-22s %s\n", "ViVo (moving mean):", stock)
	fmt.Printf("%-22s %s\n", "ViVo + Prism5G:", smart)
	if smart.StallTimeS <= stock.StallTimeS && smart.AvgQuality >= stock.AvgQuality {
		fmt.Println("\nPrism5G matched or improved both QoE metrics.")
	} else if smart.StallTimeS < stock.StallTimeS {
		fmt.Println("\nPrism5G traded a little quality for much smoother playback.")
	} else {
		fmt.Println("\nclose call — rerun with more training epochs to see the gap open.")
	}
}
