// Quickstart: generate a 5G CA measurement dataset, train Prism5G and a
// baseline, and compare their throughput-prediction error.
//
// Run with:
//
//	go run ./examples/quickstart
//
// -quick shrinks the dataset and the training budget to a few seconds for
// CI smoke runs; the defaults match the demo in the README.
package main

import (
	"flag"
	"fmt"
	"log"

	"prism5g"
)

func main() {
	quick := flag.Bool("quick", false, "CI-sized run: tiny dataset, few epochs")
	flag.Parse()

	// 1. Generate one of the paper's sub-datasets: OpZ (the FR1-CA-heavy
	// operator), driving, 1 s granularity. Everything is simulated — no
	// carrier network needed — and deterministic given the seed.
	fmt.Println("generating the OpZ driving dataset ...")
	var ds *prism5g.Dataset
	cfg := prism5g.ModelConfig{Hidden: 16, Epochs: 20, Seed: 1}
	if *quick {
		ds = prism5g.GenerateDatasetSized(prism5g.OpZ, prism5g.Driving, prism5g.Long, 42, 3, 60)
		cfg = prism5g.ModelConfig{Hidden: 6, Epochs: 3, Seed: 1}
	} else {
		ds = prism5g.GenerateDataset(prism5g.OpZ, prism5g.Driving, prism5g.Long, 42)
	}
	fmt.Printf("dataset %s: %d traces, %d samples\n", ds.Name, len(ds.Traces), ds.NumSamples())

	// 2. Prepare sliding windows and the train/val/test split (0.5/0.2/0.3).
	bundle := prism5g.Prepare(ds, 1)
	fmt.Printf("windows: %d train / %d val / %d test\n",
		len(bundle.Train), len(bundle.Val), len(bundle.Test))
	if len(bundle.Test) == 0 {
		log.Fatal("no test windows; the dataset is too small")
	}

	// 3. Train Prism5G and an LSTM baseline. A small budget is enough for
	// the demo; see cmd/prismeval for the full evaluation.
	prism := prism5g.NewPrism5G(bundle, cfg)
	lstm, err := prism5g.NewBaselineE("LSTM", bundle, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training LSTM ...")
	lstm.Train(bundle.Train, bundle.Val)
	fmt.Println("training Prism5G ...")
	prism.Train(bundle.Train, bundle.Val)

	// 4. Compare on held-out windows.
	lstmRMSE := prism5g.EvaluateRMSE(lstm, bundle.Test)
	prismRMSE := prism5g.EvaluateRMSE(prism, bundle.Test)
	fmt.Printf("\ntest RMSE (scaled): LSTM %.4f, Prism5G %.4f\n", lstmRMSE, prismRMSE)
	if prismRMSE < lstmRMSE {
		fmt.Printf("Prism5G reduces RMSE by %.1f%% — CA-awareness pays off.\n",
			100*(1-prismRMSE/lstmRMSE))
	} else {
		fmt.Println("try more epochs: the demo budget is intentionally tiny.")
	}

	// 5. Inspect one prediction in physical units.
	w := bundle.Test[0]
	pred := prism.Predict(w)
	fmt.Println("\nsample forecast (Mbps):")
	for h := 0; h < 3; h++ {
		fmt.Printf("  t+%d s: predicted %6.0f, actual %6.0f\n",
			h+1, bundle.Scaler.InvertTput(pred[h]), bundle.Scaler.InvertTput(w.Y[h]))
	}
}
